"""EXP-PATH — variable-length path pattern search: graph backend vs. relational emulation.

The paper compiles variable-length event path patterns to Cypher "since it is
difficult to perform graph pattern search using SQL".  This experiment
quantifies that design choice: a path of forked processes chains the OSCTI
behaviour (bash forks a helper which writes the staged archive), and we
measure (a) the graph backend's variable-length search at several maximum path
lengths, and (b) the relational emulation that expresses a fixed 2-hop path as
two explicitly joined event patterns.

Expected shape: the graph backend answers bounded path queries directly and
scales with the bound; the relational emulation needs one extra pattern per
hop and only expresses fixed lengths.
"""

from __future__ import annotations

import pytest

from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import WebServerWorkload
from repro.storage.loader import AuditStore
from repro.tbql.executor import TBQLExecutionEngine


def _fork_chain_store(chains: int = 40, noise_requests: int = 400) -> AuditStore:
    """Many bash → helper → staged-file chains buried in web-server noise."""
    builder = ScenarioBuilder(seed=37)
    WebServerWorkload(requests=noise_requests).generate(builder)
    for index in range(chains):
        bash = builder.spawn_process("/bin/bash", cmdline=f"bash -c stage-{index}")
        helper = builder.spawn_process("/usr/bin/python3", cmdline=f"python3 stage-{index}.py")
        staged = builder.file(f"/tmp/staging/archive-{index}.tar")
        builder.fork(bash, helper)
        builder.read(helper, builder.file("/home/alice/documents/doc0.txt"))
        builder.write(helper, staged, amount=1 << 16)
    store = AuditStore()
    store.load_trace(builder.build())
    return store


@pytest.fixture(scope="module")
def path_store() -> AuditStore:
    return _fork_chain_store()


_PATH_QUERY = (
    'proc p["%/bin/bash%"] ~>(1~{max_len})[write] file f["%/tmp/staging/%"] as e '
    "return distinct p, f"
)

_RELATIONAL_EMULATION = (
    'proc p["%/bin/bash%"] fork proc h as e1 '
    'proc h write file f["%/tmp/staging/%"] as e2 '
    "with e1 before e2 return distinct p, f"
)


@pytest.mark.parametrize("max_len", [2, 3, 4])
def test_bench_graph_path_search(benchmark, path_store, max_len):
    engine = TBQLExecutionEngine(path_store)
    query = _PATH_QUERY.format(max_len=max_len)
    result = benchmark(engine.execute, query)
    assert len(result) == 40
    benchmark.extra_info["max_path_length"] = max_len
    benchmark.extra_info["matches"] = len(result)


def test_bench_relational_two_hop_emulation(benchmark, path_store):
    engine = TBQLExecutionEngine(path_store)
    result = benchmark(engine.execute, _RELATIONAL_EMULATION)
    assert len(result) == 40
    benchmark.extra_info["strategy"] = "two-event-pattern join"


def test_path_and_emulation_agree(path_store):
    engine = TBQLExecutionEngine(path_store)
    path_rows = set(engine.execute(_PATH_QUERY.format(max_len=2)).rows)
    emulated_rows = set(engine.execute(_RELATIONAL_EMULATION).rows)
    assert path_rows == emulated_rows


def test_longer_bounds_do_not_lose_matches(path_store):
    engine = TBQLExecutionEngine(path_store)
    short = set(engine.execute(_PATH_QUERY.format(max_len=2)).rows)
    long = set(engine.execute(_PATH_QUERY.format(max_len=4)).rows)
    assert short <= long
