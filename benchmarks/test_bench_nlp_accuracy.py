"""EXP-NLP-ACC — extraction accuracy of the NLP pipeline vs. a naive baseline.

The full paper evaluates the accuracy of threat behavior extraction; the demo
paper claims the pipeline is "unsupervised, light-weight, and accurate".  This
experiment scores IOC extraction and IOC-relation extraction (precision /
recall / F1) over the annotated OSCTI corpus, for the full pipeline and for a
naive co-occurrence baseline without IOC protection or dependency parsing, and
benchmarks the extraction throughput.

Expected shape (matching the paper's claims): the full pipeline scores high
(F1 close to 1.0 on relation extraction) and clearly beats the baseline.
"""

from __future__ import annotations

import pytest

from repro.data import ALL_REPORTS
from repro.evaluation import score_ioc_extraction, score_relation_extraction
from repro.nlp.extractor import NaiveCooccurrenceExtractor, ThreatBehaviorExtractor

_SCORED_REPORTS = [report for report in ALL_REPORTS if report.relation_ground_truth]


def _corpus_scores(extractor_factory):
    extractor = extractor_factory()
    ioc_scores, relation_scores = [], []
    for report in _SCORED_REPORTS:
        result = extractor.extract(report.text)
        ioc_scores.append(score_ioc_extraction(result, report))
        relation_scores.append(score_relation_extraction(result, report))
    def mean(values):
        return sum(values) / len(values) if values else 0.0
    return {
        "ioc_precision": round(mean([s.precision for s in ioc_scores]), 3),
        "ioc_recall": round(mean([s.recall for s in ioc_scores]), 3),
        "ioc_f1": round(mean([s.f1 for s in ioc_scores]), 3),
        "relation_precision": round(mean([s.precision for s in relation_scores]), 3),
        "relation_recall": round(mean([s.recall for s in relation_scores]), 3),
        "relation_f1": round(mean([s.f1 for s in relation_scores]), 3),
    }


def test_bench_full_pipeline_accuracy(benchmark):
    """Score + throughput of the full extraction pipeline over the corpus."""

    def run_corpus():
        extractor = ThreatBehaviorExtractor()
        return [extractor.extract(report.text) for report in _SCORED_REPORTS]

    benchmark(run_corpus)
    scores = _corpus_scores(ThreatBehaviorExtractor)
    benchmark.extra_info.update({"pipeline": "threatraptor", **scores})
    print("\n[EXP-NLP-ACC] ThreatRaptor pipeline:", scores)
    assert scores["ioc_recall"] >= 0.9
    assert scores["relation_precision"] >= 0.8
    assert scores["relation_recall"] >= 0.8


def test_bench_naive_baseline_accuracy(benchmark):
    """Score + throughput of the naive co-occurrence baseline."""

    def run_corpus():
        extractor = NaiveCooccurrenceExtractor()
        return [extractor.extract(report.text) for report in _SCORED_REPORTS]

    benchmark(run_corpus)
    scores = _corpus_scores(NaiveCooccurrenceExtractor)
    benchmark.extra_info.update({"pipeline": "naive-cooccurrence", **scores})
    print("\n[EXP-NLP-ACC] Naive co-occurrence baseline:", scores)


def test_pipeline_beats_baseline():
    """The qualitative claim: accurate extraction needs the specialised pipeline."""
    full = _corpus_scores(ThreatBehaviorExtractor)
    naive = _corpus_scores(NaiveCooccurrenceExtractor)
    print("\n[EXP-NLP-ACC] relation F1: threatraptor", full["relation_f1"], "vs naive", naive["relation_f1"])
    assert full["relation_f1"] > naive["relation_f1"]
    assert full["relation_precision"] > naive["relation_precision"]


@pytest.mark.parametrize("report", _SCORED_REPORTS, ids=lambda r: r.name)
def test_bench_per_report_extraction(benchmark, report):
    """Per-report extraction latency (the pipeline is light-weight)."""
    extractor = ThreatBehaviorExtractor()
    result = benchmark(extractor.extract, report.text)
    relation_score = score_relation_extraction(result, report)
    benchmark.extra_info["relation_f1"] = round(relation_score.f1, 3)
