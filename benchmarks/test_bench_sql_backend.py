"""EXP-SQL-BACKEND — sqlite3 SQL backend vs. the vectorized columnar engine.

The ``backend="sql"`` execution path compiles TBQL through the same
:class:`~repro.tbql.compiler.SQLCompiler` plans but executes them as
parameterized SQL on an in-memory sqlite3 database instead of the columnar
engine.  This experiment measures the three costs that matter for choosing a
backend: bulk trace loading, ad-hoc TBQL hunt execution, and prepared
standing-hunt evaluation throughput under :class:`~repro.streaming.monitor.QueryMonitor`.

The sqlite backend is a correctness oracle, not a performance target — the
assertions check result equivalence (identical matched event-id sets), and
the recorded ratios document how much slower (or faster, for index-friendly
selective hunts) sqlite is so future PRs can see the trajectory in
``BENCH_results.json``.

Set ``SQL_BENCH_EVENTS`` (e.g. ``20000``) to run a reduced smoke version —
the CI benchmark job does.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

import pytest

from benchmarks.test_bench_columnar_engine import build_columnar_trace
from repro.storage.loader import AuditStore
from repro.streaming.monitor import QueryMonitor
from repro.tbql.executor import TBQLExecutionEngine
from repro.tbql.parser import parse_query

FULL_SCALE_EVENTS = 100_000
EVENTS = int(os.environ.get("SQL_BENCH_EVENTS", str(FULL_SCALE_EVENTS)))
FULL_SCALE = EVENTS >= FULL_SCALE_EVENTS

#: Same workload shape as EXP-COLUMNAR: a broad scan, an index-assisted
#: selective hunt, and a two-pattern temporal hunt.
WIDE_QUERY = 'proc p["%/usr/bin/app1%"] read file f as e1 return p, f'
SELECTIVE_QUERY = (
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 return distinct p, f'
)
TEMPORAL_QUERY = (
    'proc p["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 '
    'proc p write file f2["%/tmp/upload%"] as e2 '
    "with e1 before e2 return distinct p, f1, f2"
)
CHAIN_QUERY = (
    'proc p["/bin/tar"] read file f1 as e1 '
    'proc p write file f2["/tmp/upload.tar"] as e2 '
    'proc q["/usr/bin/curl"] read file f2 as e3 '
    "with e1 before e2, e2 before e3 return distinct p, q, f2"
)


def _best_of(fn: Callable[[], Any], repeats: int = 3) -> tuple[float, Any]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.fixture(scope="module")
def sql_trace():
    return build_columnar_trace(EVENTS)


def _timed_load(executor: str, trace) -> tuple[float, AuditStore]:
    store = AuditStore(relational_executor=executor, apply_reduction=False)
    started = time.perf_counter()
    store.load_trace(trace)
    return time.perf_counter() - started, store


def test_sql_backend_load_and_adhoc_hunts(sql_trace, bench_results):
    """sqlite load + ad-hoc TBQL hunts: identical results, recorded ratios."""
    sql_load_seconds, sql_store = _timed_load("sql", sql_trace)
    vectorized_load_seconds, vectorized_store = _timed_load("vectorized", sql_trace)

    sql_engine = TBQLExecutionEngine(sql_store, backend="sql")
    vectorized_engine = TBQLExecutionEngine(vectorized_store)
    queries = {
        "wide": parse_query(WIDE_QUERY),
        "selective": parse_query(SELECTIVE_QUERY),
        "temporal": parse_query(TEMPORAL_QUERY),
    }

    sql_total = 0.0
    vectorized_total = 0.0
    per_query: dict[str, dict[str, float]] = {}
    for name, query in queries.items():
        sql_seconds, sql_result = _best_of(lambda q=query: sql_engine.execute(q))
        vectorized_seconds, vectorized_result = _best_of(
            lambda q=query: vectorized_engine.execute(q)
        )
        assert (
            sql_result.all_matched_event_ids()
            == vectorized_result.all_matched_event_ids()
        ), name
        assert len(sql_result) >= 1, f"{name}: workload query matched nothing"
        sql_total += sql_seconds
        vectorized_total += vectorized_seconds
        per_query[name] = {
            "sql_seconds": sql_seconds,
            "vectorized_seconds": vectorized_seconds,
            "slowdown": sql_seconds / vectorized_seconds if vectorized_seconds else 0.0,
        }

    bench_results.record(
        "sql_backend_load_and_adhoc",
        events=EVENTS,
        full_scale=FULL_SCALE,
        sql_load_seconds=sql_load_seconds,
        vectorized_load_seconds=vectorized_load_seconds,
        sql_query_seconds=sql_total,
        vectorized_query_seconds=vectorized_total,
        slowdown=sql_total / vectorized_total if vectorized_total else 0.0,
        per_query=per_query,
    )
    print(
        f"\n[EXP-SQL-BACKEND] events={EVENTS} "
        f"load: sql={sql_load_seconds:.3f}s vectorized={vectorized_load_seconds:.3f}s "
        f"ad-hoc: sql={sql_total:.3f}s vectorized={vectorized_total:.3f}s"
    )


def test_sql_prepared_standing_hunt_throughput(bench_results):
    """Prepared standing hunts on sqlite agree with vectorized and are timed."""
    num_events = min(EVENTS, 40_000)
    evaluations = 50
    trace = build_columnar_trace(num_events, num_processes=100, num_files=300)
    watermark = trace.events[-500].start_time

    def run(executor: str, backend: str) -> tuple[float, int, tuple]:
        store = AuditStore(relational_executor=executor, apply_reduction=False)
        engine = TBQLExecutionEngine(store, backend=backend)
        monitor = QueryMonitor(engine.execute, prepare=engine.prepare)
        standing = monitor.register("exfil", CHAIN_QUERY)
        store.append_batch(trace.entities, trace.events)
        alerts = monitor.evaluate(0, None)  # initializing full evaluation
        signatures = tuple(sorted(alert.matched_event_ids for alert in alerts))
        after_init = standing.eval_seconds
        for index in range(evaluations):
            monitor.evaluate(index + 1, watermark)
        per_batch = (standing.eval_seconds - after_init) / evaluations
        return per_batch, standing.alerts_raised, signatures

    sql_seconds, sql_alerts, sql_signatures = run("sql", "sql")
    vectorized_seconds, vectorized_alerts, vectorized_signatures = run(
        "vectorized", "auto"
    )
    assert sql_signatures == vectorized_signatures
    assert sql_alerts == vectorized_alerts >= 1, "standing hunt raised no alerts"

    bench_results.record(
        "sql_prepared_standing_hunt",
        events=num_events,
        evaluations=evaluations,
        sql_batch_seconds=sql_seconds,
        vectorized_batch_seconds=vectorized_seconds,
        slowdown=sql_seconds / vectorized_seconds if vectorized_seconds else 0.0,
    )
    print(
        f"\n[EXP-SQL-BACKEND] standing-hunt per-batch eval: "
        f"sql={sql_seconds * 1e3:.3f}ms vectorized={vectorized_seconds * 1e3:.3f}ms"
    )
