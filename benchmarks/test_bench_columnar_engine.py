"""EXP-COLUMNAR — columnar engine speedup over the row-dict baseline.

The relational engine stores tables as column arrays and executes queries
over row positions (vectorized filters, positional hash joins, zero-copy
TBQL bindings).  This experiment measures end-to-end TBQL query execution on
a large synthetic audit trace against
:class:`~repro.storage.relational.reference.ReferenceQueryExecutor` — the
engine's original per-row-dict execution strategy — driven through the same
TBQL engine so both sides pay identical compile/schedule/join-binding costs
and differ only in relational execution and binding construction.

Acceptance criterion (ISSUE 2): ≥3× speedup on a ≥200k-event trace, recorded
in ``BENCH_results.json``.  It also measures the standing-query prepared-plan
cache: per-batch evaluation latency of a monitor with prepared hunts vs. one
re-deriving analysis/schedule/compilation every micro-batch.

Set ``COLUMNAR_BENCH_EVENTS`` (e.g. ``20000``) to run a reduced smoke version
— the CI benchmark job does — in which case the 3× assertion is relaxed to a
result-equivalence check (small traces measure fixed overheads, not the hot
path).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.storage.loader import AuditStore
from repro.storage.relational.reference import ReferenceQueryExecutor
from repro.streaming.monitor import QueryMonitor
from repro.tbql.executor import TBQLExecutionEngine
from repro.tbql.parser import parse_query

#: Full-scale event count (the acceptance criterion's ≥200k floor).
FULL_SCALE_EVENTS = 200_000
EVENTS = int(os.environ.get("COLUMNAR_BENCH_EVENTS", str(FULL_SCALE_EVENTS)))
FULL_SCALE = EVENTS >= FULL_SCALE_EVENTS

#: The TBQL workload: a broad low-selectivity pattern (bulk row processing),
#: a selective index-assisted pattern, and a two-pattern temporal hunt.
WIDE_QUERY = 'proc p["%/usr/bin/app1%"] read file f as e1 return p, f'
SELECTIVE_QUERY = (
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 return distinct p, f'
)
TEMPORAL_QUERY = (
    'proc p["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 '
    'proc p write file f2["%/tmp/upload%"] as e2 '
    "with e1 before e2 return distinct p, f1, f2"
)
#: Standing-query workload: a three-hop exfiltration chain whose temporal
#: sink (e3) the monitor narrows to the watermark each batch.  Filters are
#: exact (no wildcards) so every pattern is index-assisted, and the windowed
#: sink carries the highest pruning score: it runs first and constrains the
#: other patterns, which is what keeps per-batch evaluation cheap enough for
#: plan-derivation overhead to matter.
CHAIN_QUERY = (
    'proc p["/bin/tar"] read file f1 as e1 '
    'proc p write file f2["/tmp/upload.tar"] as e2 '
    'proc q["/usr/bin/curl"] read file f2 as e3 '
    "with e1 before e2, e2 before e3 return distinct p, q, f2"
)

NUM_PROCESSES = 300
NUM_FILES = 3000


def build_columnar_trace(
    num_events: int = EVENTS,
    seed: int = 17,
    num_processes: int = NUM_PROCESSES,
    num_files: int = NUM_FILES,
) -> AuditTrace:
    """A deterministic synthetic trace with planted tar→passwd→upload chains.

    Uses a linear congruential generator instead of :mod:`random` so the trace
    is stable across Python versions (the recorded timings stay comparable).
    """
    state = seed

    def rand(bound: int) -> int:
        nonlocal state
        state = (state * 6364136223846793005 + 1442695040888963407) % (2**64)
        return (state >> 33) % bound

    processes = [
        ProcessEntity(entity_id=i + 1, exename=f"/usr/bin/app{i % 50}", pid=1000 + i)
        for i in range(num_processes)
    ]
    tar = ProcessEntity(entity_id=num_processes + 1, exename="/bin/tar", pid=7001)
    curl = ProcessEntity(entity_id=num_processes + 2, exename="/usr/bin/curl", pid=7002)
    processes += [tar, curl]

    file_base = num_processes + 10
    files = [
        FileEntity(entity_id=file_base + i, name=f"/srv/data/file{i}.dat")
        for i in range(num_files)
    ]
    passwd = FileEntity(entity_id=file_base + num_files, name="/etc/passwd")
    upload = FileEntity(entity_id=file_base + num_files + 1, name="/tmp/upload.tar")
    files += [passwd, upload]

    operations = (Operation.READ, Operation.WRITE)
    events: list[SystemEvent] = []
    for i in range(num_events):
        start = (i + 1) * 1_000
        if i % 10_000 == 5_000:
            # Planted attack chain: tar reads /etc/passwd ...
            subject, obj, operation = tar, passwd, Operation.READ
        elif i % 10_000 == 5_001:
            # ... then writes the staging archive ...
            subject, obj, operation = tar, upload, Operation.WRITE
        elif i % 10_000 == 5_002:
            # ... which curl picks up for exfiltration.
            subject, obj, operation = curl, upload, Operation.READ
        else:
            subject = processes[rand(num_processes)]
            obj = files[rand(num_files)]
            operation = operations[rand(2)]
        events.append(
            SystemEvent(
                event_id=i + 1,
                subject_id=subject.entity_id,
                object_id=obj.entity_id,
                operation=operation,
                object_type=EntityType.FILE,
                start_time=start,
                end_time=start + 500,
                amount=rand(4096),
            )
        )
    return AuditTrace(entities=processes + files, events=events)


class RowDictBaselineEngine(TBQLExecutionEngine):
    """The TBQL engine wired to the pre-columnar row-dict execution path.

    Relational data queries run through :class:`ReferenceQueryExecutor` and
    each result row is split into per-entity dicts — the engine's original
    binding construction — so the comparison isolates exactly what the
    columnar rework changed.
    """

    def __init__(self, store: AuditStore, backend: str = "auto") -> None:
        super().__init__(store, backend=backend)
        tables = {name: store.relational.table(name) for name in ("entities", "events")}
        self._reference = ReferenceQueryExecutor(tables)

    def _execute_on_relational(self, pattern, compiled):
        result = self._reference.execute(compiled)
        bindings = []
        for row in result.as_dicts():
            subject = {
                key.split(".", 1)[1]: value
                for key, value in row.items()
                if key.startswith("subject.")
            }
            obj = {
                key.split(".", 1)[1]: value
                for key, value in row.items()
                if key.startswith("object.")
            }
            event = {
                key.split(".", 1)[1]: value
                for key, value in row.items()
                if key.startswith("event.")
            }
            event["edge_ids"] = (event["id"],)
            bindings.append(
                {
                    pattern.subject.identifier: subject,
                    pattern.obj.identifier: obj,
                    f"@{pattern.event_id}": event,
                }
            )
        return bindings


@pytest.fixture(scope="module")
def columnar_store() -> AuditStore:
    store = AuditStore(apply_reduction=False)
    store.load_trace(build_columnar_trace())
    return store


def _best_of(fn: Callable[[], Any], repeats: int = 3) -> tuple[float, Any]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_columnar_engine_speedup_vs_row_dicts(columnar_store, bench_results):
    """≥3× end-to-end TBQL speedup over the row-dict baseline at full scale."""
    columnar = TBQLExecutionEngine(columnar_store)
    baseline = RowDictBaselineEngine(columnar_store)
    queries = {
        "wide": parse_query(WIDE_QUERY),
        "selective": parse_query(SELECTIVE_QUERY),
        "temporal": parse_query(TEMPORAL_QUERY),
    }
    # Warm the baseline's one-time row-dict materialization so the timed runs
    # compare query execution, not cache priming (the old engine stored row
    # dicts at load time).
    baseline.execute(queries["selective"])

    columnar_total = 0.0
    baseline_total = 0.0
    per_query: dict[str, dict[str, float]] = {}
    for name, query in queries.items():
        columnar_seconds, columnar_result = _best_of(lambda q=query: columnar.execute(q))
        baseline_seconds, baseline_result = _best_of(lambda q=query: baseline.execute(q))
        assert set(columnar_result.rows) == set(baseline_result.rows), name
        assert (
            columnar_result.all_matched_event_ids()
            == baseline_result.all_matched_event_ids()
        ), name
        assert len(columnar_result) >= 1, f"{name}: workload query matched nothing"
        columnar_total += columnar_seconds
        baseline_total += baseline_seconds
        per_query[name] = {
            "columnar_seconds": columnar_seconds,
            "row_dict_seconds": baseline_seconds,
            "speedup": baseline_seconds / columnar_seconds if columnar_seconds else 0.0,
        }

    speedup = baseline_total / columnar_total if columnar_total else 0.0
    bench_results.record(
        "columnar_engine_vs_row_dicts",
        events=EVENTS,
        full_scale=FULL_SCALE,
        columnar_seconds=columnar_total,
        row_dict_seconds=baseline_total,
        speedup=speedup,
        per_query=per_query,
    )
    print(
        f"\n[EXP-COLUMNAR] events={EVENTS} columnar={columnar_total:.3f}s "
        f"row-dict={baseline_total:.3f}s speedup={speedup:.1f}x"
    )
    if FULL_SCALE:
        assert speedup >= 3.0, (
            f"columnar engine only {speedup:.2f}x faster than the row-dict "
            f"baseline (required: 3x at {EVENTS} events)"
        )


def test_prepared_standing_query_batch_latency(bench_results):
    """Prepared standing queries drop steady-state per-batch eval latency.

    Measures the monitor's per-batch evaluation cost in the regime the plan
    cache targets: a watermark-windowed standing query whose patterns are all
    index-assisted, so the data-dependent work per batch is small and the
    per-batch *fixed* cost — semantic analysis, scheduling and per-pattern
    SQL compilation, which the unprepared path re-derives every batch —
    is a real fraction of the latency.
    """
    num_events = min(EVENTS, 40_000)
    evaluations = 200
    trace = build_columnar_trace(num_events, num_processes=100, num_files=300)
    watermark = trace.events[-500].start_time

    def run(prepare: bool) -> tuple[float, int, tuple]:
        store = AuditStore(apply_reduction=False)
        engine = TBQLExecutionEngine(store)
        monitor = QueryMonitor(
            engine.execute, prepare=engine.prepare if prepare else None
        )
        standing = monitor.register("exfil", CHAIN_QUERY)
        store.append_batch(trace.entities, trace.events)
        alerts = monitor.evaluate(0, None)  # initializing full evaluation
        signatures = tuple(sorted(alert.matched_event_ids for alert in alerts))
        after_init = standing.eval_seconds
        for index in range(evaluations):
            # Steady state: same watermark each round; dedup suppresses
            # re-alerts, so this times exactly the per-batch evaluation.
            monitor.evaluate(index + 1, watermark)
        per_batch = (standing.eval_seconds - after_init) / evaluations
        return per_batch, standing.alerts_raised, signatures

    prepared_seconds, prepared_alerts, prepared_signatures = min(
        run(prepare=True) for _ in range(3)
    )
    unprepared_seconds, unprepared_alerts, unprepared_signatures = min(
        run(prepare=False) for _ in range(3)
    )
    assert prepared_signatures == unprepared_signatures
    assert prepared_alerts == unprepared_alerts >= 1, "standing query raised no alerts"

    ratio = prepared_seconds / unprepared_seconds if unprepared_seconds else 0.0
    bench_results.record(
        "prepared_standing_query_batch_latency",
        events=num_events,
        evaluations=evaluations,
        prepared_batch_seconds=prepared_seconds,
        unprepared_batch_seconds=unprepared_seconds,
        ratio=ratio,
    )
    print(
        f"\n[EXP-COLUMNAR] standing-query per-batch eval: "
        f"prepared={prepared_seconds * 1e3:.3f}ms "
        f"unprepared={unprepared_seconds * 1e3:.3f}ms ratio={ratio:.2f}"
    )
    if FULL_SCALE:
        assert prepared_seconds < unprepared_seconds, (
            "prepared standing-query evaluation was not faster than "
            "re-deriving the plan per batch"
        )
