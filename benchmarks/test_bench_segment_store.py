"""EXP-SEGMENTS — durable segmented storage: scan cost, pruning, shard fanout.

Three measurements over the planted-chain synthetic trace (the same generator
as EXP-COLUMNAR so timings are comparable):

* **Scan cost** — the same time-windowed join executed on the in-memory
  relational store and on the segmented store (sealed to ~32 on-disk
  segments).  The segmented store answers from mmap-backed column files and
  prunes non-overlapping segments on footer min/max stats, so the windowed
  query should not pay for the full trace.
* **Prune selectivity** — the acceptance criterion (ISSUE 9): on a ≥200k-event
  suite a 10%-of-timeline window must prune **≥50%** of sealed segments.
* **Per-shard standing-query fanout** — a 4-shard pipeline with host-spread
  data executes prepared hunts on every shard and merges; throughput is
  recorded and the shared plan cache must show one compile serving all
  shards (hits ≥ shards − 1).

Set ``SEGMENT_BENCH_EVENTS`` (e.g. ``20000``) for the CI smoke version — the
selectivity floor is then relaxed to "pruning happened at all" (few segments
make the ratio noisy) and only result equivalence is gated.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.test_bench_columnar_engine import build_columnar_trace
from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.storage.relational.database import RelationalDatabase
from repro.storage.relational.expression import Between, Column, Comparison, Literal
from repro.storage.relational.query import SelectQuery
from repro.storage.segment import SegmentedRelationalDatabase
from repro.tbql.prepared import ShardedPreparedQuery

#: Full-scale event count (the acceptance criterion's ≥200k floor).
FULL_SCALE_EVENTS = 200_000
EVENTS = int(os.environ.get("SEGMENT_BENCH_EVENTS", str(FULL_SCALE_EVENTS)))
FULL_SCALE = EVENTS >= FULL_SCALE_EVENTS

#: Seal threshold chosen so the trace spans ~32 segments at any scale.
SEGMENT_ROWS = max(1_024, EVENTS // 32)

SHARDS = 4

#: Standing hunts for the fanout measurement: the planted exfiltration chain
#: plus two selective single-pattern hunts.
FANOUT_QUERIES = (
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 return distinct p, f',
    'proc p["%curl%"] read file f["%upload%"] as e1 return distinct p, f',
    (
        'proc p["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 '
        'proc p write file f2["%/tmp/upload%"] as e2 '
        "with e1 before e2 return distinct p, f1, f2"
    ),
)


@pytest.fixture(scope="module")
def trace():
    return build_columnar_trace(EVENTS)


def _windowed_query(trace) -> SelectQuery:
    """A selective join over the middle 10% of the trace's timeline."""
    low = trace.events[0].start_time
    high = trace.events[-1].start_time
    span = high - low
    window_low = low + int(span * 0.45)
    window_high = low + int(span * 0.55)
    query = SelectQuery()
    query.add_table("events", "e")
    query.add_table("entities", "s")
    query.add_join("e", "srcid", "s", "id")
    query.add_filter("e", Comparison(Column("optype"), "=", Literal("read")))
    query.add_filter("e", Between(Column("starttime"), window_low, window_high))
    query.add_output("s", "exename", "subject")
    query.add_output("e", "id", "event")
    return query


def test_segment_scan_vs_in_memory(trace, tmp_path_factory, bench_results):
    """Windowed scans: segmented store (with pruning) vs the in-memory store."""
    memory = RelationalDatabase()
    memory.load_trace(trace)
    segmented = SegmentedRelationalDatabase(
        tmp_path_factory.mktemp("segments"), segment_rows=SEGMENT_ROWS
    )
    segmented.load_trace(trace)
    segmented.seal()
    query = _windowed_query(trace)

    started = time.perf_counter()
    expected = memory.execute(query)
    memory_seconds = time.perf_counter() - started

    segmented.execute(query)  # warm the per-segment readers (mmap + decode)
    segmented.reset_scan_counters()
    started = time.perf_counter()
    actual = segmented.execute(query)
    segmented_seconds = time.perf_counter() - started

    assert sorted(actual.rows) == sorted(expected.rows)
    stats = segmented.statistics()["segments"]
    bench_results.record(
        "segment_store/scan_vs_memory",
        events=EVENTS,
        full_scale=FULL_SCALE,
        segments=stats["count"],
        memory_seconds=round(memory_seconds, 6),
        segmented_seconds=round(segmented_seconds, 6),
        speedup=round(memory_seconds / max(segmented_seconds, 1e-9), 3),
        rows=len(actual.rows),
    )


def test_segment_prune_selectivity(trace, tmp_path_factory, bench_results):
    """Acceptance: a 10% time window prunes ≥50% of segments at full scale."""
    segmented = SegmentedRelationalDatabase(
        tmp_path_factory.mktemp("segments"), segment_rows=SEGMENT_ROWS
    )
    segmented.load_trace(trace)
    segmented.seal()
    assert segmented.sealed_segments >= 4

    segmented.reset_scan_counters()
    segmented.execute(_windowed_query(trace))
    stats = segmented.statistics()["segments"]
    total = stats["pruned"] + stats["scanned"]
    selectivity = stats["pruned"] / total if total else 0.0

    bench_results.record(
        "segment_store/prune_selectivity",
        events=EVENTS,
        full_scale=FULL_SCALE,
        segments=segmented.sealed_segments,
        pruned=stats["pruned"],
        scanned=stats["scanned"],
        prune_selectivity=round(selectivity, 4),
    )
    if FULL_SCALE:
        assert selectivity >= 0.5, (
            f"pruned only {stats['pruned']}/{total} segments for a 10% window"
        )
    else:
        assert stats["pruned"] > 0  # smoke: pruning must at least engage


def test_per_shard_standing_query_fanout(trace, bench_results):
    """Prepared hunts fan out across 4 shards from one compiled plan."""
    raptor = ThreatRaptor(ThreatRaptorConfig(shards=SHARDS))
    raptor.load_trace(trace)
    prepared = [raptor.prepare_query(text) for text in FANOUT_QUERIES]
    assert all(isinstance(plan, ShardedPreparedQuery) for plan in prepared)

    # Warm once (compiles each plan exactly once, on the first engine).
    for plan in prepared:
        plan.execute()

    repeats = 5
    started = time.perf_counter()
    for _ in range(repeats):
        for plan in prepared:
            plan.execute()
    elapsed = time.perf_counter() - started
    executions = repeats * len(prepared)

    # One compile serves every shard: after warmup each plan's cache shows at
    # least shards − 1 hits (the acceptance criterion's floor).
    for plan in prepared:
        assert plan.cache_info()["hits"] >= SHARDS - 1

    bench_results.record(
        "segment_store/sharded_fanout",
        events=EVENTS,
        full_scale=FULL_SCALE,
        shards=SHARDS,
        hunts=len(prepared),
        hunts_per_second=round(executions / max(elapsed, 1e-9), 2),
        shard_executions_per_second=round(
            executions * SHARDS / max(elapsed, 1e-9), 2
        ),
        plan_cache=raptor.plan_cache.info() if raptor.plan_cache else {},
    )
