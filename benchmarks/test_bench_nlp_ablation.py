"""EXP-ABL-NLP — ablation of the extraction pipeline's design choices.

The paper motivates three specific design choices in the NLP pipeline: IOC
protection (so general NLP modules survive IOC-internal punctuation),
coreference resolution within a block (so pronoun subjects inherit the right
IOC), and dependency-tree simplification (so later stages only traverse
relevant structure).  This experiment removes each in turn and measures the
relation-extraction F1 over the annotated corpus plus the extraction latency.

Expected shape: disabling IOC protection or coreference resolution costs
recall/precision; disabling simplification does not change accuracy but
increases the work done by later stages.
"""

from __future__ import annotations

import pytest

from repro.data import ALL_REPORTS
from repro.evaluation import score_relation_extraction
from repro.nlp.extractor import ThreatBehaviorExtractor

_SCORED_REPORTS = [report for report in ALL_REPORTS if report.relation_ground_truth]

_VARIANTS: dict[str, dict[str, bool]] = {
    "full": {},
    "no-ioc-protection": {"protect_iocs_enabled": False},
    "no-coreference": {"resolve_coreference": False},
    "no-simplification": {"simplify_trees": False},
}


def _corpus_relation_f1(**kwargs) -> float:
    extractor = ThreatBehaviorExtractor(**kwargs)
    scores = [
        score_relation_extraction(extractor.extract(report.text), report)
        for report in _SCORED_REPORTS
    ]
    return sum(score.f1 for score in scores) / len(scores)


@pytest.mark.parametrize("variant", list(_VARIANTS), ids=list(_VARIANTS))
def test_bench_ablation_variant(benchmark, variant):
    """Extraction latency and accuracy for one ablation variant."""
    kwargs = _VARIANTS[variant]

    def run_corpus():
        extractor = ThreatBehaviorExtractor(**kwargs)
        return [extractor.extract(report.text) for report in _SCORED_REPORTS]

    benchmark(run_corpus)
    f1 = _corpus_relation_f1(**kwargs)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["relation_f1"] = round(f1, 3)
    print(f"\n[EXP-ABL-NLP] {variant}: corpus relation F1 = {f1:.3f}")


def test_ioc_protection_matters():
    """Removing IOC protection must hurt relation extraction accuracy."""
    full = _corpus_relation_f1()
    ablated = _corpus_relation_f1(protect_iocs_enabled=False)
    print(f"\n[EXP-ABL-NLP] relation F1 full={full:.3f} vs no-protection={ablated:.3f}")
    assert full > ablated


def test_coreference_matters():
    """Removing coreference resolution must lose the pronoun-subject relations."""
    full = _corpus_relation_f1()
    ablated = _corpus_relation_f1(resolve_coreference=False)
    print(f"\n[EXP-ABL-NLP] relation F1 full={full:.3f} vs no-coreference={ablated:.3f}")
    assert full > ablated


def test_simplification_preserves_accuracy():
    """Tree simplification is a performance optimisation, not an accuracy one."""
    full = _corpus_relation_f1()
    ablated = _corpus_relation_f1(simplify_trees=False)
    assert abs(full - ablated) < 0.05
