"""EXP-LINT — static-analysis gate cost.

The analyzer runs in front of every query execution, hunt registration and
corpus pass, so its cost must be negligible next to what it guards.  Three
measurements, recorded to ``BENCH_results.json`` via the shared recorder:

* **per-query analysis latency** — microseconds per ``StaticAnalyzer.analyze``
  over the bundled campaign hunt queries, cold (fresh analyzer) and cached
  (the memoized report the admission gate serves on re-analysis);
* **corpus-scale lint throughput** — queries/second linting every distinct
  query synthesized from a variant corpus, including store statistics;
* **end-to-end gate overhead** — ``hunt_corpus`` wall time over a loaded
  audit trace with ``analysis_mode="enforce"`` vs ``"off"``, best-of-N per
  mode so scheduler noise cancels; the gate must stay under 5% (asserted at
  15% to keep CI timing-noise tolerant, with the honest ratio recorded).

Size via ``ANALYSIS_BENCH_REPORTS`` (default 48) and
``ANALYSIS_BENCH_REPEATS`` (default 5).  The gate analyzes once per
*distinct* canonical hunt (overlapping reports dedup before the gate), so
its absolute cost is flat in corpus size while extraction scales linearly —
both counts are recorded so the ratio can be read in context.
"""

from __future__ import annotations

import os
import time

from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.intel.corpus import ReportCorpus
from repro.scenarios import generate_campaigns
from repro.tbql.analysis import StaticAnalyzer
from repro.tbql.parser import parse_query

REPORT_COUNT = int(os.environ.get("ANALYSIS_BENCH_REPORTS", "48"))
REPEATS = int(os.environ.get("ANALYSIS_BENCH_REPEATS", "5"))


def test_bench_analyzer_latency_per_query(bench_results):
    """Cold and cached microseconds per analyze() over campaign hunt queries."""
    queries = [
        parse_query(hunt.query_text)
        for campaign in generate_campaigns(3, base_seed=900)
        for hunt in campaign.hunts
    ]
    assert queries

    cold_seconds = []
    for _ in range(REPEATS):
        analyzer = StaticAnalyzer()
        started = time.perf_counter()
        for query in queries:
            assert not analyzer.analyze(query).has_errors()
        cold_seconds.append(time.perf_counter() - started)
    cold_us = min(cold_seconds) / len(queries) * 1e6

    warm = StaticAnalyzer()
    for query in queries:
        warm.analyze(query)
    started = time.perf_counter()
    hits = 0
    for _ in range(REPEATS * 20):
        for query in queries:
            warm.analyze(query)
            hits += 1
    cached_us = (time.perf_counter() - started) / hits * 1e6

    entry = bench_results.record(
        "analysis-latency",
        queries=len(queries),
        repeats=REPEATS,
        microseconds_per_query_cold=round(cold_us, 2),
        microseconds_per_query_cached=round(cached_us, 2),
    )
    print(f"\nanalysis-latency: {entry}")
    assert cold_us < 50_000  # generous ceiling: the gate must stay cheap


def test_bench_corpus_lint_throughput(bench_results):
    """Queries/second linting every distinct synthesized corpus query."""
    corpus = ReportCorpus.variants(REPORT_COUNT, seed=41)
    raptor = ThreatRaptor()
    queries = []
    seen = set()
    for corpus_report in corpus:
        extraction = raptor.extract_behavior_graph(corpus_report.text)
        query = raptor.synthesize_query(extraction.graph)
        text = str(query)
        if text not in seen:
            seen.add(text)
            queries.append(query)
    assert queries

    analyzer = StaticAnalyzer(store=raptor.store)
    started = time.perf_counter()
    reports = [analyzer.analyze(query) for query in queries for _ in range(REPEATS)]
    seconds = time.perf_counter() - started
    assert not any(report.has_errors() for report in reports)

    linted = len(reports)
    entry = bench_results.record(
        "analysis-corpus-throughput",
        corpus_reports=REPORT_COUNT,
        distinct_queries=len(queries),
        lints=linted,
        seconds=round(seconds, 6),
        queries_per_second=round(linted / seconds, 2),
    )
    print(f"\nanalysis-corpus-throughput: {entry}")


def test_bench_hunt_corpus_gate_overhead(bench_results):
    """hunt_corpus wall time, enforce vs off: the gate must stay marginal.

    Each run hunts the corpus against a store pre-loaded with a generated
    campaign trace — the deployment the paper describes, where registration
    work (and thus the gate) competes with extraction and evaluation over
    real audit data.  Best-of-N per mode cancels scheduler noise; a single
    pair of runs on a busy box swings more than the gate itself costs.
    """
    corpus = ReportCorpus.variants(REPORT_COUNT, seed=51)
    campaign = generate_campaigns(1, base_seed=900, noise_scale=3.0)[0]

    hunt_counts = set()

    def run(mode: str) -> float:
        raptor = ThreatRaptor(ThreatRaptorConfig(analysis_mode=mode))
        raptor.store.load_trace(campaign.trace)
        started = time.perf_counter()
        result = raptor.hunt_corpus(corpus)
        seconds = time.perf_counter() - started
        assert result.hunts
        assert not result.rejected
        hunt_counts.add(len(result.hunts))
        return seconds

    run("off")  # warm shared caches (extraction pipeline) outside the comparison
    # Interleave the modes: load drifts over seconds on a busy box, and
    # back-to-back batches would attribute that drift to the gate.
    off_runs, enforce_runs = [], []
    for _ in range(REPEATS):
        off_runs.append(run("off"))
        enforce_runs.append(run("enforce"))
    off_seconds = min(off_runs)
    enforce_seconds = min(enforce_runs)
    assert len(hunt_counts) == 1  # both modes register the same distinct hunts

    overhead = enforce_seconds / off_seconds - 1.0
    entry = bench_results.record(
        "analysis-gate-overhead",
        corpus_reports=REPORT_COUNT,
        distinct_hunts=hunt_counts.pop(),
        trace_events=len(campaign.trace.events),
        repeats=REPEATS,
        seconds_off=round(off_seconds, 6),
        seconds_enforce=round(enforce_seconds, 6),
        overhead_pct=round(overhead * 100, 2),
    )
    print(f"\nanalysis-gate-overhead: {entry}")
    # Target is <5%; assert with headroom so CI scheduling noise cannot flake.
    assert overhead < 0.15
