"""EXP-CPR — Causality Preserved Reduction: data size and query latency impact.

The paper stores audit data after applying the Causality Preserved Reduction
technique "to reduce the data size" by merging excessive events between the
same pair of entities.  This experiment measures (a) the reduction factor on a
bursty workload, (b) the latency of the reduction pass itself, and (c) how the
reduction affects the latency of a representative hunting query.

Expected shape: a reduction factor of roughly 1.5–3× on the mixed workload
(much higher on the bursty file-server sessions alone), unchanged query
results, and equal-or-lower query latency on the reduced store.
"""

from __future__ import annotations

from repro.auditing.reduction import CausalityPreservedReducer
from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import NoisyFileServerWorkload
from repro.storage.loader import AuditStore
from repro.tbql.executor import TBQLExecutionEngine

_QUERY = (
    'proc p["%/usr/sbin/smbd%"] read file f as e1 '
    'proc p send ip c as e2 '
    "with e1 before e2 return distinct p, f, c"
)


def _bursty_trace(sessions: int = 20, operations: int = 150):
    builder = ScenarioBuilder(seed=31)
    NoisyFileServerWorkload(sessions=sessions, operations_per_session=operations).generate(builder)
    return builder.build()


def test_bench_reduction_pass(benchmark):
    """Latency and factor of the CPR pass on a bursty trace."""
    trace = _bursty_trace()
    reducer = CausalityPreservedReducer()
    reduced, stats = benchmark(reducer.reduce, trace)
    print(
        f"\n[EXP-CPR] events {stats.events_before} -> {stats.events_after} "
        f"({stats.reduction_factor:.2f}x) on the bursty file-server workload"
    )
    assert stats.reduction_factor > 5.0
    assert len(reduced.events) == stats.events_after
    benchmark.extra_info["reduction_factor"] = round(stats.reduction_factor, 2)
    benchmark.extra_info["events_before"] = stats.events_before
    benchmark.extra_info["events_after"] = stats.events_after


def test_bench_mixed_workload_reduction(benchmark, large_simulation):
    """Reduction factor on the realistic mixed demo workload."""
    reducer = CausalityPreservedReducer()
    _, stats = benchmark(reducer.reduce, large_simulation.trace)
    print(f"\n[EXP-CPR] mixed workload reduction factor: {stats.reduction_factor:.2f}x")
    assert stats.reduction_factor >= 1.2
    benchmark.extra_info["reduction_factor"] = round(stats.reduction_factor, 2)


def test_bench_query_on_raw_store(benchmark):
    # A moderate burst size keeps the un-reduced join tractable while still
    # showing the latency gap against the reduced store.
    trace = _bursty_trace(sessions=6, operations=40)
    store = AuditStore(apply_reduction=False)
    store.load_trace(trace)
    engine = TBQLExecutionEngine(store)
    result = benchmark(engine.execute, _QUERY)
    benchmark.extra_info["events"] = len(store.loaded_trace.events)
    benchmark.extra_info["rows"] = len(result)


def test_bench_query_on_reduced_store(benchmark):
    trace = _bursty_trace(sessions=6, operations=40)
    store = AuditStore(apply_reduction=True)
    store.load_trace(trace)
    engine = TBQLExecutionEngine(store)
    result = benchmark(engine.execute, _QUERY)
    benchmark.extra_info["events"] = len(store.loaded_trace.events)
    benchmark.extra_info["rows"] = len(result)


def test_reduction_preserves_query_answers():
    trace = _bursty_trace(sessions=8, operations=60)
    raw_store = AuditStore(apply_reduction=False)
    raw_store.load_trace(trace)
    reduced_store = AuditStore(apply_reduction=True)
    reduced_store.load_trace(trace)
    raw = TBQLExecutionEngine(raw_store).execute(_QUERY)
    reduced = TBQLExecutionEngine(reduced_store).execute(_QUERY)
    assert set(raw.rows) == set(reduced.rows)
    assert len(reduced_store.loaded_trace.events) < len(raw_store.loaded_trace.events)
