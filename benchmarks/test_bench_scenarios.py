"""Benchmark: campaign generation and cross-engine differential hunting.

Records into ``BENCH_results.json``:

* ``scenario_campaign_generation`` — seeded campaign-generation throughput
  (campaigns/s and events/s);
* ``scenario_differential_hunts`` — per-engine-configuration hunt throughput
  over the same campaign set, plus the differential-consistency verdict.

Sizes are tunable through ``SCENARIO_BENCH_CAMPAIGNS`` and
``SCENARIO_BENCH_NOISE`` so the CI smoke job can run a reduced load.
"""

from __future__ import annotations

import os
import time

from repro.scenarios import (
    ENGINE_CONFIGURATIONS,
    DifferentialHarness,
    generate_campaigns,
)

CAMPAIGNS = int(os.environ.get("SCENARIO_BENCH_CAMPAIGNS", "8"))
NOISE_SCALE = float(os.environ.get("SCENARIO_BENCH_NOISE", "2.0"))


def test_bench_campaign_generation(bench_results):
    started = time.perf_counter()
    campaigns = generate_campaigns(CAMPAIGNS, base_seed=900, noise_scale=NOISE_SCALE)
    elapsed = time.perf_counter() - started
    events = sum(len(campaign.trace.events) for campaign in campaigns)
    malicious = sum(len(campaign.ground_truth.event_ids) for campaign in campaigns)
    entry = bench_results.record(
        "scenario_campaign_generation",
        campaigns=len(campaigns),
        noise_scale=NOISE_SCALE,
        events=events,
        malicious_events=malicious,
        seconds=round(elapsed, 4),
        campaigns_per_second=round(len(campaigns) / elapsed, 2),
        events_per_second=round(events / elapsed, 1),
    )
    print(f"\n[bench] campaign generation: {entry}")
    assert events > malicious > 0


def test_bench_differential_hunts(bench_results):
    campaigns = generate_campaigns(CAMPAIGNS, base_seed=900, noise_scale=NOISE_SCALE)
    harness = DifferentialHarness()
    hunts = sum(len(campaign.hunts) for campaign in campaigns)

    # One timed matrix pass produces both the throughput numbers and the
    # per-configuration answers the consistency verdict is computed from.
    per_configuration: dict[str, float] = {}
    answers: dict[str, list[dict[str, set[int]]]] = {}
    for configuration in ENGINE_CONFIGURATIONS:
        started = time.perf_counter()
        answers[configuration.name] = [
            harness.matched_event_ids(configuration, campaign) for campaign in campaigns
        ]
        per_configuration[configuration.name] = time.perf_counter() - started

    baseline = ENGINE_CONFIGURATIONS[0].name
    consistent = all(
        matched == answers[baseline] for matched in answers.values()
    )
    entry = bench_results.record(
        "scenario_differential_hunts",
        campaigns=len(campaigns),
        hunts=hunts,
        configurations=len(ENGINE_CONFIGURATIONS),
        consistent=consistent,
        **{
            f"hunts_per_second[{name}]": round(hunts / seconds, 2)
            for name, seconds in per_configuration.items()
        },
    )
    print(f"\n[bench] differential hunts: {entry}")
    assert consistent, {
        name: matched for name, matched in answers.items() if matched != answers[baseline]
    }
