"""EXP-STREAM — streaming ingestion throughput and standing-query latency.

The streaming subsystem claims two things worth measuring:

* **batched-append throughput** — micro-batched incremental ingestion (entity
  dedup + incremental Causality Preserved Reduction + appends into both
  backends) should sustain a high event rate, since it is the path a live
  deployment would run continuously;
* **standing-query latency** — re-evaluating a registered hunt after a batch
  with the watermark-windowed strategy (only new data can complete a match)
  must beat naively re-executing the full query over the whole store, which
  is what makes per-batch re-evaluation affordable at all.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import build_simulation
from repro.core.pipeline import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.storage.loader import AuditStore
from repro.streaming import ReplaySource, StreamIngestor, iter_batches

_BATCH_SIZE = 512


@pytest.fixture(scope="module")
def stream_simulation():
    """~15k events: large enough that full re-execution visibly hurts."""
    return build_simulation(scale=4.0)


@pytest.fixture(scope="module")
def stream_records(stream_simulation):
    return list(ReplaySource(stream_simulation).records())


def _ingest_all(records):
    ingestor = StreamIngestor(AuditStore(), batch_size=_BATCH_SIZE)
    for batch in iter_batches(iter(records), _BATCH_SIZE):
        ingestor.ingest(batch)
    ingestor.flush()
    return ingestor


def test_bench_batched_append_throughput(benchmark, stream_records):
    """Micro-batched append rate into both backends, events per second."""
    ingestor = benchmark(_ingest_all, stream_records)
    assert ingestor.statistics.events_ingested == len(stream_records)
    benchmark.extra_info["events"] = len(stream_records)
    benchmark.extra_info["batch_size"] = _BATCH_SIZE
    benchmark.extra_info["events_per_second"] = round(
        len(stream_records) / benchmark.stats.stats.mean
    )


@pytest.fixture(scope="module")
def streamed_service(stream_records):
    """A service that has streamed everything; the last batch sets the watermark."""
    raptor = ThreatRaptor()
    service = raptor.watch(FIGURE2_REPORT.text, name="fig2", batch_size=_BATCH_SIZE)
    head, tail = stream_records[:-_BATCH_SIZE], stream_records[-_BATCH_SIZE:]
    for batch in iter_batches(iter(head), _BATCH_SIZE):
        service.process_batch(batch)
    final_batch = service._ingestor.ingest(tail)
    return service, final_batch.watermark_start_ns


def _query_pair(streamed_service):
    service, watermark = streamed_service
    standing = service.hunts[0]
    windowed = service._monitor._windowed_query(standing, watermark)
    assert windowed is not standing.query, "watermark windowing must have applied"
    return service.raptor, windowed, standing.query


def test_bench_standing_query_windowed(benchmark, streamed_service):
    """Per-batch evaluation with the sink pattern narrowed to new data."""
    raptor, windowed, _ = _query_pair(streamed_service)
    benchmark(raptor.execute_query, windowed)
    benchmark.extra_info["strategy"] = "windowed"


def test_bench_standing_query_full_reexecution(benchmark, streamed_service):
    """The naive baseline: re-run the whole query over the whole store."""
    raptor, _, full = _query_pair(streamed_service)
    benchmark(raptor.execute_query, full)
    benchmark.extra_info["strategy"] = "full-reexecution"


def test_windowed_beats_full_reexecution(streamed_service):
    """Watermark windowing must beat naive full re-execution per batch."""
    raptor, windowed, full = _query_pair(streamed_service)

    def median_seconds(query, rounds=7):
        samples = []
        for _ in range(rounds):
            started = time.perf_counter()
            raptor.execute_query(query)
            samples.append(time.perf_counter() - started)
        return sorted(samples)[len(samples) // 2]

    windowed_seconds = median_seconds(windowed)
    full_seconds = median_seconds(full)
    print(
        f"\n[EXP-STREAM] per-batch standing-query latency: "
        f"windowed={windowed_seconds * 1000:.2f}ms "
        f"full-reexecution={full_seconds * 1000:.2f}ms "
        f"speedup={full_seconds / windowed_seconds:.1f}x"
    )
    assert windowed_seconds < full_seconds


def test_streamed_store_matches_batch_store(stream_simulation, stream_records):
    """Incremental ingestion stores exactly what a whole-trace load stores."""
    streamed = _ingest_all(stream_records).store
    batch = AuditStore()
    batch.load_trace(stream_simulation.trace)
    streamed_ids = {e.event_id for e in streamed.loaded_trace.events}
    batch_ids = {e.event_id for e in batch.loaded_trace.events}
    assert streamed_ids == batch_ids
    assert streamed.graph.edge_count() == batch.graph.edge_count()
