"""EXP-QUERY-LAT — TBQL query execution efficiency.

The paper's central systems claim is that complex multi-pattern TBQL queries
"can be efficiently executed in different database backends seamlessly" thanks
to (a) compiling patterns to the appropriate backend and (b) scheduling data
queries by pruning score and constraining later queries with earlier results.

This experiment measures the execution latency of the synthesized Figure 2
hunting query over simulated audit datasets of two sizes, comparing:

* **scheduled** execution (pruning-score order + constraint propagation) —
  the ThreatRaptor engine's default;
* **unscheduled** execution (declaration order, no propagation) — the baseline;
* the **relational** and **graph** backends for single-event-pattern queries.

Expected shape: scheduled beats unscheduled, and the gap grows with data size;
both return identical results.
"""

from __future__ import annotations

import pytest

from repro.data import FIGURE2_REPORT
from repro.nlp.extractor import ThreatBehaviorExtractor
from repro.tbql.executor import TBQLExecutionEngine
from repro.tbql.synthesis import QuerySynthesizer

_QUERY = QuerySynthesizer().synthesize(
    ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text).graph
)

_SINGLE_PATTERN = 'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return distinct p, f'


@pytest.mark.parametrize("dataset", ["small", "large"])
def test_bench_scheduled_execution(benchmark, dataset, small_store, large_store):
    store = small_store if dataset == "small" else large_store
    engine = TBQLExecutionEngine(store)
    result = benchmark(engine.execute, _QUERY, True)
    assert len(result) >= 1
    benchmark.extra_info["dataset_events"] = len(store.loaded_trace.events)
    benchmark.extra_info["strategy"] = "scheduled"


@pytest.mark.parametrize("dataset", ["small", "large"])
def test_bench_unscheduled_execution(benchmark, dataset, small_store, large_store):
    store = small_store if dataset == "small" else large_store
    engine = TBQLExecutionEngine(store)
    result = benchmark(engine.execute, _QUERY, False)
    assert len(result) >= 1
    benchmark.extra_info["dataset_events"] = len(store.loaded_trace.events)
    benchmark.extra_info["strategy"] = "unscheduled"


def test_scheduled_and_unscheduled_agree(large_store):
    engine = TBQLExecutionEngine(large_store)
    optimized = engine.execute(_QUERY, optimize=True)
    unoptimized = engine.execute(_QUERY, optimize=False)
    assert set(optimized.rows) == set(unoptimized.rows)
    assert optimized.all_matched_event_ids() == unoptimized.all_matched_event_ids()


def test_scheduling_reduces_intermediate_work(large_store):
    """The scheduled plan touches far fewer candidate records per pattern."""
    engine = TBQLExecutionEngine(large_store)
    optimized = engine.execute(_QUERY, optimize=True)
    unoptimized = engine.execute(_QUERY, optimize=False)
    scheduled_candidates = sum(optimized.statistics["pattern_matches"].values())
    unscheduled_candidates = sum(unoptimized.statistics["pattern_matches"].values())
    print(
        f"\n[EXP-QUERY-LAT] per-pattern candidate records: scheduled={scheduled_candidates} "
        f"unscheduled={unscheduled_candidates}"
    )
    assert scheduled_candidates <= unscheduled_candidates


@pytest.mark.parametrize("backend", ["relational", "graph"])
def test_bench_single_pattern_backend(benchmark, backend, large_store):
    """Single heavily-filtered event pattern on each backend."""
    engine = TBQLExecutionEngine(large_store, backend=backend)
    result = benchmark(engine.execute, _SINGLE_PATTERN)
    assert ("/bin/tar", "/etc/passwd") in set(result.rows)
    benchmark.extra_info["backend"] = backend


def test_backends_return_identical_rows(large_store):
    relational = TBQLExecutionEngine(large_store, backend="relational").execute(_QUERY)
    graph = TBQLExecutionEngine(large_store, backend="graph").execute(_QUERY)
    assert set(relational.rows) == set(graph.rows)
