"""EXP-CORPUS — corpus-scale OSCTI intelligence throughput and dedup.

The ``repro.intel`` subsystem turns a whole corpus of overlapping OSCTI
reports into a minimal set of standing hunts.  This benchmark measures the
two levers that make that corpus-scale:

* **extraction throughput** (reports/s) for serial single-worker extraction
  vs. the worker pool (with the shared memoized pipeline setup and
  duplicate-text dedup) — on multi-core hosts the pool shows real parallel
  speedup; every configuration's honest numbers are recorded either way;
* **plan-cache dedup hit rate** — the fraction of hunted reports whose
  canonical synthesized query collided with an already-planned one and
  therefore shares a single ``PreparedQuery`` standing hunt instead of
  registering its own.

Results are appended to ``BENCH_results.json`` via the shared recorder, so
future PRs have a trajectory to compare against.  Size via
``CORPUS_BENCH_REPORTS`` (default 48) and ``CORPUS_BENCH_WORKERS``
(default 2).
"""

from __future__ import annotations

import os
import time

from repro.core.pipeline import ThreatRaptor
from repro.intel.corpus import ReportCorpus
from repro.intel.extractor import CorpusExtractor

REPORT_COUNT = int(os.environ.get("CORPUS_BENCH_REPORTS", "48"))
WORKER_COUNT = max(2, int(os.environ.get("CORPUS_BENCH_WORKERS", "2")))

_CORPUS = ReportCorpus.variants(REPORT_COUNT, seed=31)


def _graph_shapes(extraction):
    shapes = {}
    for report_id, result in extraction.results():
        shapes[report_id] = frozenset(
            (edge.subject.ioc.normalized(), edge.verb, edge.obj.ioc.normalized())
            for edge in result.graph.edges
        )
    return shapes


def test_bench_corpus_extraction_serial_vs_parallel(bench_results):
    """Extraction throughput: workers=1 (cold) vs worker pool (shared setup)."""
    naive = CorpusExtractor(workers=1, dedup_texts=False)
    started = time.perf_counter()
    naive_extraction = naive.extract_corpus(_CORPUS)
    naive_seconds = time.perf_counter() - started

    serial = CorpusExtractor(workers=1)
    started = time.perf_counter()
    serial_extraction = serial.extract_corpus(_CORPUS)
    serial_seconds = time.perf_counter() - started

    pooled = CorpusExtractor(workers=WORKER_COUNT)
    started = time.perf_counter()
    pooled_extraction = pooled.extract_corpus(_CORPUS)
    pooled_seconds = time.perf_counter() - started

    # Correctness first: every configuration extracts identical behavior.
    assert _graph_shapes(serial_extraction) == _graph_shapes(naive_extraction)
    assert _graph_shapes(pooled_extraction) == _graph_shapes(naive_extraction)
    assert not pooled_extraction.failures()

    cpu_count = os.cpu_count() or 1
    parallel_speedup = serial_seconds / pooled_seconds
    entry = bench_results.record(
        "corpus-extraction",
        reports=REPORT_COUNT,
        workers=WORKER_COUNT,
        cpu_count=cpu_count,
        seconds_workers1_nodedup=round(naive_seconds, 6),
        seconds_workers1=round(serial_seconds, 6),
        seconds_workersN=round(pooled_seconds, 6),
        reports_per_second_workers1=round(REPORT_COUNT / serial_seconds, 2),
        reports_per_second_workersN=round(REPORT_COUNT / pooled_seconds, 2),
        duplicate_text_hits=serial_extraction.cache_hits,
        dedup_speedup_vs_nodedup=round(naive_seconds / serial_seconds, 3),
        parallel_speedup_vs_workers1=round(parallel_speedup, 3),
    )
    print(f"\n[EXP-CORPUS] extraction: {entry}")
    if cpu_count > 1:
        # The acceptance bar is only physically meetable with >1 core; on
        # single-CPU hosts the pool is pure overhead and we record the honest
        # numbers without gating on them.
        assert parallel_speedup > 1.0, (
            f"worker pool slower than serial on {cpu_count} cpus: {parallel_speedup:.3f}x"
        )
    else:
        print("[EXP-CORPUS] single-CPU host: parallel speedup recorded, not gated")


def test_bench_corpus_hunt_dedup(bench_results):
    """Plan-cache dedup: overlapping reports collapse onto few standing hunts."""
    raptor = ThreatRaptor()
    started = time.perf_counter()
    result = raptor.hunt_corpus(_CORPUS, workers=1)
    seconds = time.perf_counter() - started
    summary = result.summary()

    hunted = summary["hunted_reports"]
    assert hunted >= min(20, REPORT_COUNT)
    # The acceptance bar: strictly fewer standing hunts than reports.
    assert summary["hunts"] < hunted

    entry = bench_results.record(
        "corpus-hunt-dedup",
        reports=summary["reports"],
        hunted_reports=hunted,
        hunts_registered=summary["hunts_registered"],
        plan_cache_dedup_hit_rate=summary["dedup_ratio"],
        register_seconds=round(seconds, 6),
        reports_per_second=round(summary["reports"] / seconds, 2),
    )
    print(f"\n[EXP-CORPUS] hunt dedup: {entry}")
