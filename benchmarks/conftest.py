"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md's per-experiment
index.  The fixtures here build the simulated audit datasets once per session
so individual benchmarks measure query/extraction work, not data generation.
"""

from __future__ import annotations

import json
import subprocess
import time
import uuid
from pathlib import Path
from typing import Any

import pytest

from repro.auditing.workload.attacks import (
    DataLeakageAttack,
    Figure2DataLeakageChain,
    PasswordCrackingAttack,
)
from repro.auditing.workload.benign import NoisyFileServerWorkload
from repro.auditing.workload.generator import HostSimulator, SimulationResult
from repro.storage.loader import AuditStore


def build_simulation(scale: float, seed: int = 29) -> SimulationResult:
    """A demo-style host (benign mix + both demo attacks) at a given scale."""
    simulator = (
        HostSimulator(seed=seed, benign_scale=scale)
        .add_default_benign()
        .add_attack(PasswordCrackingAttack())
        .add_attack(DataLeakageAttack())
        .add_attack(Figure2DataLeakageChain())
    )
    simulator.add_benign(
        NoisyFileServerWorkload(
            sessions=max(2, int(6 * scale)), operations_per_session=max(10, int(60 * scale))
        )
    )
    return simulator.run()


def build_store(simulation: SimulationResult, apply_reduction: bool = True) -> AuditStore:
    """Load a simulation into a fresh audit store."""
    store = AuditStore(apply_reduction=apply_reduction)
    store.load_trace(simulation.trace)
    return store


#: Machine-readable benchmark timings accumulate here, one JSON entry per
#: recorded measurement, so future PRs have a perf trajectory to compare
#: against.  The file lives at the repo root next to ROADMAP.md.
BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


def _current_git_sha() -> str | None:
    """The working tree's commit SHA, or ``None`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


class BenchResultsRecorder:
    """Appends machine-readable benchmark timings to ``BENCH_results.json``.

    Each recorded entry is a flat JSON object with at least ``benchmark`` (a
    stable name), ``recorded_at`` (ISO timestamp), ``run_id`` (one random id
    shared by every record of a recorder session, so one run's records can be
    told apart from re-runs), ``git_sha`` (the commit measured, ``None``
    outside a git checkout) and whatever numeric fields the benchmark passes
    (seconds, event counts, speedup ratios).  Entries from earlier runs are
    preserved: the file is a JSON array that only ever grows, so it doubles
    as the perf trajectory across PRs.
    """

    def __init__(self, path: Path) -> None:
        self._path = path
        self._entries: list[dict[str, Any]] = []
        self.run_id = uuid.uuid4().hex[:12]
        self.git_sha = _current_git_sha()

    def record(self, benchmark: str, **fields: Any) -> dict[str, Any]:
        """Queue one measurement for writing at session teardown."""
        entry: dict[str, Any] = {
            "benchmark": benchmark,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "run_id": self.run_id,
            "git_sha": self.git_sha,
        }
        entry.update(fields)
        self._entries.append(entry)
        return entry

    def flush(self) -> None:
        """Append queued entries to the results file (creating it if needed)."""
        if not self._entries:
            return
        existing: list[dict[str, Any]] = []
        if self._path.exists():
            try:
                loaded = json.loads(self._path.read_text(encoding="utf-8"))
                if isinstance(loaded, list):
                    existing = loaded
            except (OSError, json.JSONDecodeError):
                existing = []
        existing.extend(self._entries)
        self._path.write_text(
            json.dumps(existing, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
        self._entries = []


@pytest.fixture(scope="session")
def bench_results() -> BenchResultsRecorder:
    """Session-wide recorder appending timings to ``BENCH_results.json``."""
    recorder = BenchResultsRecorder(BENCH_RESULTS_PATH)
    yield recorder
    recorder.flush()


@pytest.fixture(scope="session")
def small_simulation() -> SimulationResult:
    """~10k events."""
    return build_simulation(scale=2.0)


@pytest.fixture(scope="session")
def large_simulation() -> SimulationResult:
    """~40-60k events."""
    return build_simulation(scale=10.0)


@pytest.fixture(scope="session")
def small_store(small_simulation) -> AuditStore:
    return build_store(small_simulation)


@pytest.fixture(scope="session")
def large_store(large_simulation) -> AuditStore:
    return build_store(large_simulation)
