"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md's per-experiment
index.  The fixtures here build the simulated audit datasets once per session
so individual benchmarks measure query/extraction work, not data generation.
"""

from __future__ import annotations

import pytest

from repro.auditing.workload.attacks import (
    DataLeakageAttack,
    Figure2DataLeakageChain,
    PasswordCrackingAttack,
)
from repro.auditing.workload.benign import NoisyFileServerWorkload
from repro.auditing.workload.generator import HostSimulator, SimulationResult
from repro.storage.loader import AuditStore


def build_simulation(scale: float, seed: int = 29) -> SimulationResult:
    """A demo-style host (benign mix + both demo attacks) at a given scale."""
    simulator = (
        HostSimulator(seed=seed, benign_scale=scale)
        .add_default_benign()
        .add_attack(PasswordCrackingAttack())
        .add_attack(DataLeakageAttack())
        .add_attack(Figure2DataLeakageChain())
    )
    simulator.add_benign(
        NoisyFileServerWorkload(
            sessions=max(2, int(6 * scale)), operations_per_session=max(10, int(60 * scale))
        )
    )
    return simulator.run()


def build_store(simulation: SimulationResult, apply_reduction: bool = True) -> AuditStore:
    """Load a simulation into a fresh audit store."""
    store = AuditStore(apply_reduction=apply_reduction)
    store.load_trace(simulation.trace)
    return store


@pytest.fixture(scope="session")
def small_simulation() -> SimulationResult:
    """~10k events."""
    return build_simulation(scale=2.0)


@pytest.fixture(scope="session")
def large_simulation() -> SimulationResult:
    """~40-60k events."""
    return build_simulation(scale=10.0)


@pytest.fixture(scope="session")
def small_store(small_simulation) -> AuditStore:
    return build_store(small_simulation)


@pytest.fixture(scope="session")
def large_store(large_simulation) -> AuditStore:
    return build_store(large_simulation)
