"""EXP-FAULT — recovery overhead of the crash-safe hunting service.

Crash safety is only deployable if its overhead is tolerable, so this module
measures the three costs the fault-tolerance subsystem adds:

* **checkpoint write cost per batch** — the atomic write-fsync-rename of the
  standing state after every micro-batch;
* **journal overhead** — durable (fsynced) alert appends vs. plain in-memory
  delivery, amortized over a full streamed hunt;
* **resume latency** — how long ``HuntingService.resume`` takes to rebuild
  the monitor from a checkpoint + journal, which bounds the detection gap a
  restart introduces.

Each measurement is appended to ``BENCH_results.json`` so future PRs can
track the recovery-overhead trajectory.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_simulation
from repro.core.pipeline import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.streaming import (
    CheckpointStore,
    HuntingService,
    JournalSink,
    ReplaySource,
)

_BATCH_SIZE = 256


@pytest.fixture(scope="module")
def fault_simulation():
    """~5k events: enough batches for per-batch costs to dominate."""
    return build_simulation(scale=1.0)


def _run_hunt(simulation, checkpoint_store=None, journal=None):
    service = HuntingService(
        raptor=ThreatRaptor(),
        batch_size=_BATCH_SIZE,
        checkpoint_store=checkpoint_store,
        journal=journal,
    )
    service.register_hunt("figure2", report=FIGURE2_REPORT.text)
    service.run(ReplaySource(simulation))
    return service


def test_bench_checkpoint_write_cost(benchmark, fault_simulation, tmp_path, bench_results):
    """Per-batch cost of the atomic checkpoint write."""
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        store = CheckpointStore(tmp_path / f"run-{counter['n']}")
        return _run_hunt(fault_simulation, checkpoint_store=store)

    service = benchmark.pedantic(run, rounds=3, iterations=1)
    checkpoint_stats = service.checkpoint_store.statistics()
    benchmark.extra_info["checkpoint_writes"] = checkpoint_stats["writes"]
    benchmark.extra_info["seconds_per_write"] = checkpoint_stats["seconds_per_write"]
    bench_results.record(
        "fault_tolerance/checkpoint_write_cost",
        checkpoint_writes=checkpoint_stats["writes"],
        seconds_per_write=checkpoint_stats["seconds_per_write"],
        batches=service.statistics()["ingest"]["batches"],
        run_seconds=benchmark.stats.stats.mean,
    )


def test_bench_journal_overhead(benchmark, fault_simulation, tmp_path, bench_results):
    """Full streamed hunt with durable journaling, vs. the plain-run cost."""
    import time as _time

    started = _time.perf_counter()
    plain = _run_hunt(fault_simulation)
    plain_seconds = _time.perf_counter() - started
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        journal = JournalSink(tmp_path / f"j{counter['n']}" / "alerts.jsonl")
        service = _run_hunt(fault_simulation, journal=journal)
        journal.close()
        return service

    service = benchmark.pedantic(run, rounds=3, iterations=1)
    journaled_seconds = benchmark.stats.stats.mean
    assert service.journal is not None and len(service.journal) > 0
    benchmark.extra_info["plain_seconds"] = plain_seconds
    benchmark.extra_info["journaled_alerts"] = len(service.journal)
    bench_results.record(
        "fault_tolerance/journal_overhead",
        plain_seconds=plain_seconds,
        journaled_seconds=journaled_seconds,
        journaled_alerts=len(service.journal),
        overhead_ratio=journaled_seconds / plain_seconds if plain_seconds else 0.0,
    )


def test_bench_resume_latency(benchmark, fault_simulation, tmp_path, bench_results):
    """Time to rebuild a hunting service from checkpoint + journal."""
    directory = tmp_path / "resume"
    store = CheckpointStore(directory)
    journal = JournalSink(directory / "alerts.jsonl")
    service = HuntingService(
        raptor=ThreatRaptor(),
        batch_size=_BATCH_SIZE,
        checkpoint_store=store,
        journal=journal,
    )
    service.register_hunt("figure2", report=FIGURE2_REPORT.text)
    service.run(ReplaySource(fault_simulation))
    journal.close()

    def resume():
        recovery_journal = JournalSink(directory / "alerts.jsonl")
        resumed = HuntingService.resume(
            CheckpointStore(directory),
            raptor=ThreatRaptor(),
            journal=recovery_journal,
        )
        recovery_journal.close()
        return resumed

    resumed = benchmark(resume)
    assert resumed.resumed
    assert resumed.hunt("figure2") is not None
    benchmark.extra_info["signatures_restored"] = len(
        resumed.hunt("figure2").matched_event_ids()
    )
    bench_results.record(
        "fault_tolerance/resume_latency",
        resume_seconds=benchmark.stats.stats.mean,
        hunts_restored=len(resumed.hunts),
        signatures_restored=len(resumed.hunt("figure2").matched_event_ids()),
    )
