"""FIG2-E2E — reproduce the paper's Figure 2 end-to-end case.

Figure 2 shows the whole pipeline on the data-leakage attack: OSCTI text →
threat behavior graph (8 edges) → synthesized TBQL query (8 event patterns,
temporal chain, distinct return) → matched system auditing records.  The
benchmark measures the wall-clock cost of each stage and asserts that the
artefact *shapes* match the figure exactly.
"""

from __future__ import annotations

from repro.core.pipeline import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.evaluation import score_hunting
from repro.nlp.extractor import ThreatBehaviorExtractor
from repro.tbql.formatter import format_query
from repro.tbql.synthesis import QuerySynthesizer

EXPECTED_EDGES = [
    ("/bin/tar", "read", "/etc/passwd"),
    ("/bin/tar", "write", "/tmp/upload.tar"),
    ("/bin/bzip2", "read", "/tmp/upload.tar"),
    ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
    ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
    ("/usr/bin/gpg", "write", "/tmp/upload"),
    ("/usr/bin/curl", "read", "/tmp/upload"),
    ("/usr/bin/curl", "connect", "192.168.29.128"),
]


def test_bench_extraction_stage(benchmark):
    """Stage 1: OSCTI text → threat behavior graph."""
    extractor = ThreatBehaviorExtractor()
    result = benchmark(extractor.extract, FIGURE2_REPORT.text)
    ordered = [(e.subject.text, e.verb, e.obj.text) for e in result.graph.edges_in_order()]
    assert ordered == EXPECTED_EDGES
    benchmark.extra_info["behavior_edges"] = len(result.graph.edges)
    benchmark.extra_info["iocs"] = len(result.merge_result.canonical_iocs())


def test_bench_synthesis_stage(benchmark):
    """Stage 2: threat behavior graph → TBQL query."""
    graph = ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text).graph
    synthesizer = QuerySynthesizer()
    query = benchmark(synthesizer.synthesize, graph)
    text = format_query(query)
    assert len(query.event_patterns()) == 8
    assert len(query.temporal_relations) == 7
    assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1' in text
    benchmark.extra_info["tbql_lines"] = len(text.splitlines())


def test_bench_execution_stage(benchmark, small_simulation, small_store):
    """Stage 3: TBQL query → matched audit records."""
    from repro.tbql.executor import TBQLExecutionEngine

    graph = ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text).graph
    query = QuerySynthesizer().synthesize(graph)
    engine = TBQLExecutionEngine(small_store)

    result = benchmark(engine.execute, query)
    truth = small_simulation.ground_truth("figure2-data-leakage")
    matched = result.all_matched_event_ids()
    score = score_hunting(matched, truth.event_ids)
    assert score.recall == 1.0
    # The simulation also injects the Section III data-leakage attack, whose
    # exfiltration chain legitimately matches the same query; what matters is
    # that no *benign* activity is flagged.
    benign_ids = {event.event_id for event in small_simulation.trace.benign_events()}
    assert not (matched & benign_ids)
    benchmark.extra_info["events_searched"] = len(small_store.loaded_trace.events)
    benchmark.extra_info["hunting"] = score.as_dict()


def test_bench_full_pipeline(benchmark, small_simulation):
    """The whole hunt() call: extraction + synthesis + execution."""
    raptor = ThreatRaptor()
    raptor.load_trace(small_simulation.trace)

    report = benchmark(raptor.hunt, FIGURE2_REPORT.text)
    assert len(report.result) >= 1
    assert len(report.behavior_graph.edges) == 8
    truth = small_simulation.ground_truth("figure2-data-leakage")
    matched = report.result.all_matched_event_ids()
    assert truth.event_ids <= matched
    benchmark.extra_info["summary"] = report.summary()
