"""EXP-GRAPH-PATH — cost-guided graph path search vs. the DFS oracle.

The graph backend's :class:`CostGuidedPathMatcher` picks its expansion
direction from index cardinalities (forward from the sources, backward from
the targets, or seeded from the time index when the final hop is windowed)
and prunes long patterns with a meet-in-the-middle reachability sweep, over
adjacency arrays sorted by edge start time.  This experiment measures it
against the retained always-forward DFS
:class:`~repro.storage.graph.pattern.PathMatcher` — the engine's original
strategy, kept as the correctness oracle — on multi-hop (2–4) path patterns
over a large synthetic audit graph.

Acceptance criterion (ISSUE 3): ≥5× speedup over the DFS oracle on multi-hop
path patterns over a ≥100k-event trace, and per-batch evaluation of a
graph-backed standing hunt that does not scale with total graph size
(delta-seeded from the watermark window).  Both are recorded in
``BENCH_results.json``.

Set ``GRAPH_BENCH_EVENTS`` (e.g. ``20000``) to run a reduced smoke version —
the CI benchmark job does — in which case the 5× assertion is relaxed to a
result-equivalence check (small graphs measure fixed overheads, not search).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.pattern import PathMatcher
from repro.storage.graph.planner import CostGuidedPathMatcher
from repro.storage.loader import AuditStore
from repro.streaming.monitor import QueryMonitor
from repro.tbql.compiler.cypher_compiler import CypherCompiler
from repro.tbql.executor import TBQLExecutionEngine
from repro.tbql.parser import parse_query

#: Full-scale event count (the acceptance criterion's ≥100k floor).
FULL_SCALE_EVENTS = 100_000
EVENTS = int(os.environ.get("GRAPH_BENCH_EVENTS", str(FULL_SCALE_EVENTS)))
FULL_SCALE = EVENTS >= FULL_SCALE_EVENTS

#: The hunted behaviour: a bash-rooted fork chain ending in a staging write.
#: ``{max_len}`` is the variable-length bound under test.
PATH_QUERY = (
    'proc p["%/bin/bash%"] ~>(2~{max_len})[write] file f["%/tmp/staging/%"] as e '
    "return distinct p, f"
)

#: Attack chains planted in the graph (each: bash forks helper, helper writes
#: one staging archive) and the noise reads attached to both chain processes —
#: the dead edges an undirected-by-cost DFS wastes its time on.
CHAINS = 40
CHAIN_NOISE_READS = 400
#: Shared noise files the chain processes read (reused so the file label
#: bucket stays small relative to the event count, as real audit data does).
SHARED_NOISE_FILES = 400
SERVER_PROCESSES = 20
SERVER_FILES = 200


def build_path_trace(num_events: int = EVENTS) -> AuditTrace:
    """A deterministic audit trace: fork→write chains buried in server noise.

    Every bash and every helper carries ``CHAIN_NOISE_READS`` reads of shared
    noise files, so the oracle's forward DFS from each bash explores hundreds
    of dead edges per chain; the remaining event budget is filled with
    server-process read/write noise that inflates the graph without touching
    the chains.  Times are spread so chains interleave with the noise.
    """
    next_id = 1

    def take_id() -> int:
        nonlocal next_id
        value = next_id
        next_id += 1
        return value

    entities: list[Any] = []
    noise_files = [
        FileEntity(entity_id=take_id(), name=f"/var/cache/noise{i}.dat")
        for i in range(SHARED_NOISE_FILES)
    ]
    server_files = [
        FileEntity(entity_id=take_id(), name=f"/srv/www/page{i}.html")
        for i in range(SERVER_FILES)
    ]
    servers = [
        ProcessEntity(entity_id=take_id(), exename="/usr/sbin/httpd", pid=2000 + i)
        for i in range(SERVER_PROCESSES)
    ]
    entities.extend(noise_files + server_files + servers)

    events: list[SystemEvent] = []
    event_id = 1

    def emit(subject_id: int, object_id: int, operation: Operation,
             object_type: EntityType, start: int) -> None:
        nonlocal event_id
        events.append(
            SystemEvent(
                event_id=event_id,
                subject_id=subject_id,
                object_id=object_id,
                operation=operation,
                object_type=object_type,
                start_time=start,
                end_time=start + 5,
                amount=512,
            )
        )
        event_id += 1

    chain_events = CHAINS * (2 + 2 * CHAIN_NOISE_READS)
    noise_events = max(0, num_events - chain_events)
    span = 10 * (chain_events + noise_events + 1)

    for index in range(CHAINS):
        bash = ProcessEntity(entity_id=take_id(), exename="/bin/bash", pid=4000 + index)
        helper = ProcessEntity(
            entity_id=take_id(), exename="/usr/bin/python3", pid=5000 + index
        )
        staged = FileEntity(entity_id=take_id(), name=f"/tmp/staging/archive{index}.tar")
        entities.extend((bash, helper, staged))
        base = 1 + (index * span) // CHAINS
        for noise in range(CHAIN_NOISE_READS):
            emit(bash.entity_id, noise_files[(index + noise) % SHARED_NOISE_FILES].entity_id,
                 Operation.READ, EntityType.FILE, base + noise)
        emit(bash.entity_id, helper.entity_id, Operation.FORK, EntityType.PROCESS,
             base + CHAIN_NOISE_READS)
        for noise in range(CHAIN_NOISE_READS):
            emit(helper.entity_id, noise_files[(index + 7 * noise) % SHARED_NOISE_FILES].entity_id,
                 Operation.READ, EntityType.FILE, base + CHAIN_NOISE_READS + 1 + noise)
        emit(helper.entity_id, staged.entity_id, Operation.WRITE, EntityType.FILE,
             base + 2 * CHAIN_NOISE_READS + 2)

    state = 41
    for index in range(noise_events):
        state = (state * 6364136223846793005 + 1442695040888963407) % (2**64)
        draw = state >> 33
        server = servers[draw % SERVER_PROCESSES]
        page = server_files[draw % SERVER_FILES]
        operation = Operation.READ if draw % 2 else Operation.WRITE
        emit(server.entity_id, page.entity_id, operation, EntityType.FILE,
             2 + (index * span) // max(1, noise_events))

    return AuditTrace(entities=entities, events=events)


@pytest.fixture(scope="module")
def path_graph() -> GraphDatabase:
    graph = GraphDatabase()
    graph.load_trace(build_path_trace())
    return graph


def _best_of(fn: Callable[[], Any], repeats: int = 3) -> tuple[float, Any]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _compiled_pattern(max_len: int):
    query = parse_query(PATH_QUERY.format(max_len=max_len))
    return CypherCompiler().compile_path(query.path_patterns()[0]).graph_pattern


def test_planner_speedup_vs_dfs_oracle(path_graph, bench_results):
    """≥5× speedup over the always-forward DFS on 2–4 hop patterns."""
    planner_total = 0.0
    oracle_total = 0.0
    per_length: dict[str, dict[str, Any]] = {}
    for max_len in (2, 3, 4):
        pattern = _compiled_pattern(max_len)
        planner = CostGuidedPathMatcher(path_graph)
        planner_seconds, planner_paths = _best_of(
            lambda: {(p.node_ids(), p.edge_ids()) for p in planner.match(pattern)}
        )
        # Same repeat count as the planner, so best-of timing biases neither
        # side and the recorded speedup stays comparable across PRs.
        oracle_seconds, oracle_paths = _best_of(
            lambda: {(p.node_ids(), p.edge_ids()) for p in PathMatcher(path_graph).match(pattern)}
        )
        assert planner_paths == oracle_paths
        assert len(planner_paths) == CHAINS
        planner_total += planner_seconds
        oracle_total += oracle_seconds
        per_length[str(max_len)] = {
            "planner_seconds": planner_seconds,
            "oracle_seconds": oracle_seconds,
            "strategy": planner.last_plan.describe(),
            "paths": len(planner_paths),
        }

    speedup = oracle_total / planner_total if planner_total else 0.0
    bench_results.record(
        "graph_path_planner_vs_dfs_oracle",
        events=path_graph.edge_count(),
        full_scale=FULL_SCALE,
        planner_seconds=planner_total,
        oracle_seconds=oracle_total,
        speedup=speedup,
        per_length=per_length,
    )
    print(
        f"\n[EXP-GRAPH-PATH] edges={path_graph.edge_count()} "
        f"planner={planner_total * 1e3:.1f}ms oracle={oracle_total * 1e3:.1f}ms "
        f"speedup={speedup:.1f}x"
    )
    if FULL_SCALE:
        assert speedup >= 5.0, (
            f"cost-guided planner only {speedup:.2f}x faster than the DFS "
            f"oracle (required: 5x at {EVENTS} events)"
        )


def test_incremental_standing_hunt_does_not_scale_with_graph(bench_results):
    """Per-batch evaluation of a graph-backed hunt tracks the delta, not the graph.

    Streams a growing trace in equal micro-batches (each planting one fresh
    chain) through a graph-backend monitor.  With delta seeding, the watermark
    window narrows the sink's final hop to the new edges, so late batches —
    evaluated against a many-times-larger graph — must cost about the same as
    early ones, and far less than a full re-evaluation of the final graph.
    """
    batches = 20
    events_per_batch = max(500, min(EVENTS, 30_000) // batches)
    store = AuditStore(apply_reduction=False)
    engine = TBQLExecutionEngine(store, backend="graph")
    monitor = QueryMonitor(engine.execute, prepare=engine.prepare)
    query_text = PATH_QUERY.format(max_len=3)
    standing = monitor.register("staging-exfil", query_text)

    base_time = 0

    def build_batch(index: int) -> AuditTrace:
        """One micro-batch: read-heavy server noise over fresh nodes, plus one
        planted chain.  Fresh noise processes/files per batch keep the label
        buckets growing with the graph, as real audit data does."""
        nonlocal base_time
        builder_entities: list[Any] = []
        builder_events: list[SystemEvent] = []
        first = 1_000_000 + index * 10_000

        def pid(offset: int) -> int:
            return first + offset

        bash = ProcessEntity(entity_id=pid(0), exename="/bin/bash", pid=pid(0))
        helper = ProcessEntity(entity_id=pid(1), exename="/usr/bin/python3", pid=pid(1))
        staged = FileEntity(entity_id=pid(2), name=f"/tmp/staging/batch{index}.tar")
        builder_entities.extend((bash, helper, staged))
        noise_procs = [
            ProcessEntity(entity_id=pid(10 + offset), exename="/usr/sbin/httpd", pid=pid(10 + offset))
            for offset in range(10)
        ]
        noise_files = [
            FileEntity(entity_id=pid(30 + offset), name=f"/srv/www/b{index}-{offset}.html")
            for offset in range(30)
        ]
        builder_entities.extend(noise_procs + noise_files)
        event_id = first + 100
        chain_noise = 100  # dead reads attached to each chain process
        for offset in range(events_per_batch - 2 - 2 * chain_noise):
            # Read-heavy noise (7 of 8 events), matching audit workloads.
            operation = Operation.WRITE if offset % 8 == 0 else Operation.READ
            builder_events.append(
                SystemEvent(event_id, noise_procs[offset % 10].entity_id,
                            noise_files[offset % 30].entity_id,
                            operation, EntityType.FILE, base_time, base_time + 1)
            )
            event_id += 1
            base_time += 10
        # The chain processes read noise too, so a full DFS re-evaluation
        # (the pre-planner per-batch behaviour) pays for every past chain.
        for offset in range(chain_noise):
            builder_events.append(
                SystemEvent(event_id, bash.entity_id, noise_files[offset % 30].entity_id,
                            Operation.READ, EntityType.FILE, base_time, base_time + 1)
            )
            event_id += 1
            base_time += 10
        builder_events.append(
            SystemEvent(event_id, bash.entity_id, helper.entity_id, Operation.FORK,
                        EntityType.PROCESS, base_time, base_time + 1)
        )
        event_id += 1
        base_time += 10
        for offset in range(chain_noise):
            builder_events.append(
                SystemEvent(event_id, helper.entity_id, noise_files[offset % 30].entity_id,
                            Operation.READ, EntityType.FILE, base_time, base_time + 1)
            )
            event_id += 1
            base_time += 10
        builder_events.append(
            SystemEvent(event_id, helper.entity_id, staged.entity_id, Operation.WRITE,
                        EntityType.FILE, base_time, base_time + 1)
        )
        base_time += 10
        return AuditTrace(entities=builder_entities, events=builder_events)

    batch_seconds: list[float] = []
    for index in range(batches):
        trace = build_batch(index)
        watermark = min(event.start_time for event in trace.events)
        store.append_batch(trace.entities, trace.events)
        before = standing.eval_seconds
        alerts = monitor.evaluate(index, None if index == 0 else watermark)
        batch_seconds.append(standing.eval_seconds - before)
        assert len(alerts) == 1, f"batch {index}: expected exactly one fresh alert"
    assert standing.last_graph_plans["e"]["strategy"] == "window-seeded"

    full_seconds, full_result = _best_of(lambda: engine.execute(query_text))
    assert len(full_result) == batches
    # The pre-planner behaviour of a graph-backed hunt: re-enumerate every
    # path with the forward DFS each batch.
    dfs_engine = TBQLExecutionEngine(store, backend="graph", graph_matcher="reference")
    dfs_seconds, dfs_result = _best_of(lambda: dfs_engine.execute(query_text), repeats=1)
    assert sorted(dfs_result.rows) == sorted(full_result.rows)

    early = sum(batch_seconds[1:4]) / 3
    late = sum(batch_seconds[-3:]) / 3
    growth = late / early if early else 0.0
    final_vs_dfs = dfs_seconds / batch_seconds[-1] if batch_seconds[-1] else 0.0
    bench_results.record(
        "graph_standing_hunt_incremental_eval",
        batches=batches,
        events_per_batch=events_per_batch,
        total_events=store.graph.edge_count(),
        early_batch_seconds=early,
        late_batch_seconds=late,
        growth_ratio=growth,
        full_planner_reeval_seconds=full_seconds,
        full_dfs_reeval_seconds=dfs_seconds,
        final_batch_vs_dfs_reeval=final_vs_dfs,
    )
    print(
        f"\n[EXP-GRAPH-PATH] incremental hunt: early={early * 1e3:.2f}ms "
        f"late={late * 1e3:.2f}ms growth={growth:.2f}x "
        f"planner-full={full_seconds * 1e3:.1f}ms "
        f"dfs-full={dfs_seconds * 1e3:.1f}ms ({final_vs_dfs:.1f}x the last batch)"
    )
    # The graph grew ~7x between the averaged early and late batches; the
    # delta-seeded evaluation must stay roughly flat.  A non-incremental hunt
    # grows linearly with the batch count (~10-20x here); the margin below is
    # generous only against sub-millisecond timing jitter.
    assert growth < 4.0, f"per-batch evaluation grew {growth:.2f}x with graph size"
    if FULL_SCALE:
        assert final_vs_dfs >= 5.0, (
            "delta-seeded per-batch evaluation is not materially cheaper than "
            f"the old full DFS re-evaluation ({final_vs_dfs:.2f}x)"
        )
