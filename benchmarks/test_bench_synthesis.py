"""EXP-SYNTH — query synthesis correctness and TBQL conciseness.

TBQL's motivation is that general-purpose query languages "are low-level and
verbose" while TBQL "treats system entities and events as first-class citizens".
This experiment (a) verifies that synthesis from every auditable corpus report
produces a semantically valid query covering the report's behaviour steps, and
(b) compares the size of the synthesized TBQL text against the SQL and Cypher
data queries the execution engine would have to run.

Expected shape: TBQL is several times more concise than the compiled SQL, and
synthesis is instantaneous (well under a millisecond per behaviour edge).
"""

from __future__ import annotations

import pytest

from repro.data import ALL_REPORTS
from repro.nlp.extractor import ThreatBehaviorExtractor
from repro.storage.relational.sqlgen import render_select
from repro.storage.relational.sqlgen import count_query_lines as sql_lines
from repro.tbql.compiler.cypher_compiler import CypherCompiler
from repro.tbql.compiler.sql_compiler import SQLCompiler
from repro.tbql.formatter import count_query_lines as tbql_lines
from repro.tbql.formatter import format_query
from repro.tbql.semantics import analyze
from repro.tbql.synthesis import QuerySynthesizer, SynthesisPlan

_AUDITABLE_REPORTS = [r for r in ALL_REPORTS if r.auditable and r.relation_ground_truth]


@pytest.fixture(scope="module")
def extraction_graphs():
    extractor = ThreatBehaviorExtractor()
    return {report.name: extractor.extract(report.text).graph for report in _AUDITABLE_REPORTS}


@pytest.mark.parametrize("report", _AUDITABLE_REPORTS, ids=lambda r: r.name)
def test_bench_synthesis_latency(benchmark, report, extraction_graphs):
    graph = extraction_graphs[report.name]
    synthesizer = QuerySynthesizer()
    query = benchmark(synthesizer.synthesize, graph)
    analyzed = analyze(query)
    assert analyzed.query.patterns
    benchmark.extra_info["patterns"] = len(query.patterns)


def test_synthesized_queries_cover_behaviour_steps(extraction_graphs):
    """Every auditable behaviour edge yields one event pattern (after screening)."""
    for report in _AUDITABLE_REPORTS:
        graph = extraction_graphs[report.name]
        synthesis = QuerySynthesizer().synthesize_with_report(graph)
        assert synthesis.kept_edges == len(synthesis.query.patterns)
        assert synthesis.kept_edges >= len(report.relation_ground_truth) * 0.6


def test_conciseness_tbql_vs_backend_queries(extraction_graphs):
    """Lines of TBQL vs. lines of compiled SQL for the same hunt."""
    rows = []
    sql_compiler = SQLCompiler()
    for report in _AUDITABLE_REPORTS:
        query = QuerySynthesizer().synthesize(extraction_graphs[report.name])
        tbql_text = format_query(query)
        sql_total = sum(
            sql_lines(render_select(sql_compiler.compile(pattern).query))
            for pattern in query.event_patterns()
        )
        rows.append((report.name, tbql_lines(tbql_text), sql_total))
    print("\n[EXP-SYNTH] report | TBQL lines | compiled SQL lines")
    for name, tbql_count, sql_count in rows:
        print(f"  {name:22s} | {tbql_count:10d} | {sql_count:8d}")
    for _, tbql_count, sql_count in rows:
        assert sql_count >= 3 * tbql_count


def test_conciseness_path_patterns_vs_cypher(extraction_graphs):
    """Path-pattern synthesis vs. the Cypher text it compiles to."""
    compiler = CypherCompiler()
    plan = SynthesisPlan(use_path_patterns=True, path_max_length=3)
    graph = extraction_graphs[_AUDITABLE_REPORTS[0].name]
    query = QuerySynthesizer(plan).synthesize(graph)
    tbql_count = tbql_lines(format_query(query))
    cypher_total = sum(
        len(compiler.compile_path(pattern).cypher_text.splitlines())
        for pattern in query.path_patterns()
    )
    print(f"\n[EXP-SYNTH] path-pattern TBQL lines={tbql_count} vs Cypher lines={cypher_total}")
    assert cypher_total >= tbql_count


def test_bench_synthesis_with_path_plan(benchmark, extraction_graphs):
    graph = extraction_graphs[_AUDITABLE_REPORTS[0].name]
    synthesizer = QuerySynthesizer(SynthesisPlan(use_path_patterns=True))
    query = benchmark(synthesizer.synthesize, graph)
    assert query.path_patterns()
