#!/usr/bin/env python
"""Print the latest recorded result for every benchmark in BENCH_results.json.

``BENCH_results.json`` is an append-only array — every benchmark run adds one
entry per measurement, stamped with the commit (``git_sha``) and a per-session
``run_id`` by :class:`benchmarks.conftest.BenchResultsRecorder`.  That makes
the file a perf trajectory, but reading the *current* numbers out of 150+
historical entries is tedious.  This script groups entries by benchmark name,
keeps the most recent one each (file order — the recorder only appends), and
prints a compact report:

    $ python scripts/bench_report.py
    columnar_engine_vs_row_dicts  2026-08-08T13:37:02+0000  a1b2c3d
        speedup=11.4 rows=40960 ...

Use ``--json`` for machine-readable output (a ``{benchmark: entry}`` map).

Exit status: 0 on success, 1 when the results file is missing or unreadable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS_PATH = REPO_ROOT / "BENCH_results.json"

#: Bookkeeping fields shown in the header line rather than the metrics body.
_META_FIELDS = ("benchmark", "recorded_at", "git_sha", "run_id")


def load_entries(path: Path) -> list[dict[str, Any]]:
    """All recorded entries, oldest first (the recorder only ever appends)."""
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"bench_report: no results file at {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_report: cannot read {path}: {exc}")
    if not isinstance(loaded, list):
        raise SystemExit(f"bench_report: {path} is not a JSON array")
    return [entry for entry in loaded if isinstance(entry, dict) and "benchmark" in entry]


def latest_per_benchmark(entries: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """The most recent entry for each benchmark name, in first-seen order."""
    latest: dict[str, dict[str, Any]] = {}
    for entry in entries:
        latest[str(entry["benchmark"])] = entry
    return latest


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render(latest: dict[str, dict[str, Any]]) -> str:
    """Human-readable report: one header + metric lines per benchmark."""
    lines: list[str] = []
    for name in sorted(latest):
        entry = latest[name]
        sha = entry.get("git_sha") or "-"
        header = f"{name}  {entry.get('recorded_at', '-')}  {str(sha)[:12]}"
        if entry.get("run_id"):
            header += f"  run={entry['run_id']}"
        lines.append(header)
        metrics = {k: v for k, v in entry.items() if k not in _META_FIELDS}
        if metrics:
            body = "  ".join(f"{k}={_format_value(v)}" for k, v in metrics.items())
            lines.append(f"    {body}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Print the latest result per benchmark from BENCH_results.json."
    )
    parser.add_argument(
        "--path",
        type=Path,
        default=DEFAULT_RESULTS_PATH,
        help="results file to read (default: repo-root BENCH_results.json)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a {benchmark: latest-entry} JSON map instead of text",
    )
    args = parser.parse_args(argv)

    latest = latest_per_benchmark(load_entries(args.path))
    try:
        if args.json:
            print(json.dumps(latest, indent=2, sort_keys=True))
        else:
            print(render(latest))
    except BrokenPipeError:  # piped to head/less that closed early — not an error
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
