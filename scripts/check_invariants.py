#!/usr/bin/env python
"""Repo-specific invariant lint, enforced in CI alongside ruff/mypy.

Walks the source tree's ASTs and checks invariants a generic linter cannot
know about:

* **Determinism in ``scenarios/``** — the campaign generators must be fully
  seed-driven so ground truth is reproducible: no ``time.time()`` /
  ``time.time_ns()``, no ``datetime.now()`` / ``utcnow()`` / ``today()``, and
  no module-level ``random.*`` calls (seeded ``random.Random`` instances are
  fine).
* **Durability (repo-wide)** — every ``os.replace`` must be preceded by an
  ``os.fsync`` in the same function, otherwise a crash can publish a
  checkpoint or segment manifest whose bytes never hit the disk.  The rule
  started in ``streaming/`` (checkpoints) and now covers the whole tree
  because ``storage/segment/`` publishes manifests and sealed segment
  directories with the same write-temp → fsync → replace idiom.
* **No mutable default arguments** (repo-wide) — a ``def f(x=[])`` style
  default is shared across calls and has produced real state-bleed bugs in
  exactly the kind of long-lived service this repo builds.

Exit status: 0 when clean, 1 with one ``file:line: message`` per violation
otherwise.  Run as ``python scripts/check_invariants.py`` from the repo root.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Wall-clock calls forbidden in determinism-critical paths.
_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Module-level ``random.*`` uses the shared global RNG; scenario code must
#: thread a seeded ``random.Random`` instance instead.
_GLOBAL_RANDOM_MODULE = "random"
_ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}

_MUTABLE_DEFAULT_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _dotted(node: ast.AST) -> tuple[str, ...]:
    """The dotted-name path of an attribute/name expression (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


class Violation:
    def __init__(self, path: Path, line: int, message: str) -> None:
        self.path = path
        self.line = line
        self.message = message

    def render(self) -> str:
        return f"{self.path.relative_to(REPO_ROOT)}:{self.line}: {self.message}"


def check_determinism(path: Path, tree: ast.Module) -> list[Violation]:
    """No wall-clock or global-RNG calls in seed-driven scenario code."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if len(dotted) >= 2 and dotted[-2:] in _WALL_CLOCK_CALLS:
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    f"wall-clock call {'.'.join(dotted)}() in a determinism-critical "
                    "path; derive times from the seed instead",
                )
            )
        if (
            len(dotted) == 2
            and dotted[0] == _GLOBAL_RANDOM_MODULE
            and dotted[1] not in _ALLOWED_RANDOM_ATTRS
        ):
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    f"global-RNG call {'.'.join(dotted)}() in a determinism-critical "
                    "path; use a seeded random.Random instance",
                )
            )
    return violations


def check_fsync_before_replace(path: Path, tree: ast.Module) -> list[Violation]:
    """Every ``os.replace`` must follow an ``os.fsync`` in the same function.

    The atomic-publish idiom shared by the streaming persistence layer
    (checkpoints, alert journals) and the segmented store (column files,
    segment directories, the manifest) is write-temp → fsync →
    ``os.replace``; a replace without a preceding fsync can publish a file
    whose contents are still in the page cache when the machine dies.
    """
    violations: list[Violation] = []
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for function in functions:
        calls = [node for node in ast.walk(function) if isinstance(node, ast.Call)]
        fsync_lines = [
            call.lineno for call in calls if _dotted(call.func)[-1:] == ("fsync",)
        ]
        for call in calls:
            if _dotted(call.func)[-2:] != ("os", "replace"):
                continue
            if not any(line < call.lineno for line in fsync_lines):
                violations.append(
                    Violation(
                        path,
                        call.lineno,
                        "os.replace without a preceding os.fsync in "
                        f"{function.name}(); a crash may publish unsynced bytes",
                    )
                )
    return violations


def check_mutable_defaults(path: Path, tree: ast.Module) -> list[Violation]:
    """No list/dict/set literals (or comprehensions) as parameter defaults."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if isinstance(default, _MUTABLE_DEFAULT_NODES):
                name = getattr(node, "name", "<lambda>")
                violations.append(
                    Violation(
                        path,
                        default.lineno,
                        f"mutable default argument in {name}(); use None and "
                        "construct inside the body",
                    )
                )
    return violations


def run() -> int:
    violations: list[Violation] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        relative = path.relative_to(SRC_ROOT).as_posix()
        if relative.startswith("scenarios/"):
            violations.extend(check_determinism(path, tree))
        violations.extend(check_fsync_before_replace(path, tree))
        violations.extend(check_mutable_defaults(path, tree))
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
        return 1
    print("invariants OK")
    return 0


if __name__ == "__main__":
    sys.exit(run())
