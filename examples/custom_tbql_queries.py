#!/usr/bin/env python3
"""Write TBQL queries by hand: event patterns, path patterns, filters, windows.

Besides automatic query synthesis, TBQL is a concise language for analysts to
hunt manually.  This example loads a simulated trace and runs a progression of
hand-written queries, from a single event pattern to a multi-pattern query
with variable-length paths and temporal constraints, showing the EXPLAIN-style
scheduling statistics for each.

Run with::

    python examples/custom_tbql_queries.py
"""

from __future__ import annotations

from repro import ThreatRaptor
from repro.auditing.workload import (
    DataLeakageAttack,
    HostSimulator,
    PasswordCrackingAttack,
)

QUERIES: list[tuple[str, str]] = [
    (
        "Who read the password database?",
        'proc p read file f["%/etc/shadow%" or "%/etc/passwd%"] as evt\n'
        "return distinct p, f",
    ),
    (
        "Processes talking to the C2 address",
        'proc p connect ip i["192.168.29.128"] as evt\n'
        "return distinct p, i.dstip, i.dstport",
    ),
    (
        "Downloaded-then-executed binaries (classic dropper shape)",
        'proc downloader["%wget%" or "%curl%"] write file payload as evt1\n'
        "proc runner execute file payload as evt2\n"
        "with evt1 before evt2\n"
        "return distinct downloader, payload, runner",
    ),
    (
        "Shell that eventually exfiltrates via any forked helper (path pattern)",
        'proc shell["%/bin/bash%"] ~>(1~3)[connect] ip c2["192.168.29.128"] as evt\n'
        "return distinct shell, c2",
    ),
    (
        "Sensitive read followed by a staging write from the same process",
        'proc p read file f["%/etc/%"] as evt1\n'
        'proc p write file staged["%/tmp/%"] as evt2\n'
        "with evt1 before evt2\n"
        "return distinct p, f, staged",
    ),
]


def main() -> None:
    simulation = (
        HostSimulator(seed=41)
        .add_default_benign()
        .add_attack(PasswordCrackingAttack())
        .add_attack(DataLeakageAttack())
        .run()
    )
    raptor = ThreatRaptor()
    raptor.load_trace(simulation.trace)
    print("Loaded trace:", simulation.trace.summary(), "\n")

    for title, query in QUERIES:
        print("=" * 72)
        print(title)
        print("=" * 72)
        print(query)
        result = raptor.execute_query(query)
        print("\nResults:")
        print(result.to_table(limit=8))
        statistics = result.statistics
        print(
            f"\nschedule: {statistics['schedule']}  "
            f"per-pattern matches: {statistics['pattern_matches']}  "
            f"({statistics['total_seconds'] * 1000:.1f} ms)\n"
        )


if __name__ == "__main__":
    main()
