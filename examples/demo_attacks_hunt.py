#!/usr/bin/env python3
"""Hunt the paper's two demonstration attacks (Section III).

The demo deployment runs benign routine tasks while two multi-step intrusive
attacks are performed:

* **Password Cracking After Shellshock Penetration**
* **Data Leakage After Shellshock Penetration**

This example simulates that deployment, feeds the corresponding attack
descriptions to ThreatRaptor, and reports hunting precision/recall against the
injected ground truth — including how the benign backup job (which also runs
tar → gpg → curl) is *not* flagged because its IOC values differ.

Run with::

    python examples/demo_attacks_hunt.py
"""

from __future__ import annotations

from repro import ThreatRaptor
from repro.auditing.workload import simulate_demo_host
from repro.data import report_by_name
from repro.evaluation import score_hunting


def hunt_attack(raptor: ThreatRaptor, simulation, attack_name: str) -> None:
    report = report_by_name(attack_name)
    print("=" * 72)
    print(f"Hunting: {report.title}")
    print("=" * 72)

    hunt = raptor.hunt(report.text)
    print("Behavior graph:")
    for line in hunt.behavior_graph.to_lines():
        print(" ", line)
    print("\nSynthesized TBQL query:")
    print(hunt.query_text)

    truth = simulation.ground_truth(attack_name)
    matched = hunt.result.all_matched_event_ids()
    score = score_hunting(matched, truth.event_ids)
    benign_hits = matched - truth.event_ids

    print("\nMatched records:")
    print(hunt.result.to_table(limit=10))
    print(
        f"\nmatched events: {len(matched)}  "
        f"attack events found: {len(matched & truth.event_ids)}/{len(truth.event_ids)}  "
        f"benign false positives: {len(benign_hits)}"
    )
    print(f"hunting precision/recall/F1: {score.as_dict()}\n")


def main() -> None:
    simulation = simulate_demo_host(seed=23)
    print("Demo deployment trace:", simulation.trace.summary(), "\n")

    raptor = ThreatRaptor()
    raptor.load_trace(simulation.trace)

    hunt_attack(raptor, simulation, "password-cracking")
    hunt_attack(raptor, simulation, "data-leakage")


if __name__ == "__main__":
    main()
