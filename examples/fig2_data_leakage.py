#!/usr/bin/env python3
"""Reproduce the paper's Figure 2 walk-through stage by stage.

Figure 2 of the paper shows the whole processing pipeline on a data-leakage
attack case: OSCTI text → threat behavior graph → synthesized TBQL query →
matched system auditing records.  This example prints every intermediate
artefact so it can be compared with the figure directly.

Run with::

    python examples/fig2_data_leakage.py
"""

from __future__ import annotations

from repro.auditing.workload import Figure2DataLeakageChain, HostSimulator
from repro.core import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.evaluation import score_hunting, score_ioc_extraction, score_relation_extraction
from repro.nlp.extractor import ThreatBehaviorExtractor
from repro.tbql.formatter import format_query
from repro.tbql.synthesis import QuerySynthesizer


def main() -> None:
    print("=" * 72)
    print("OSCTI text (paper Figure 2, left)")
    print("=" * 72)
    print(FIGURE2_REPORT.text)

    # -- Threat behavior extraction ----------------------------------------
    extractor = ThreatBehaviorExtractor()
    extraction = extractor.extract(FIGURE2_REPORT.text)

    print("\n" + "=" * 72)
    print("Extracted IOCs")
    print("=" * 72)
    for ioc in extraction.merge_result.canonical_iocs():
        print(f"  {ioc.text}  ({ioc.ioc_type.value})")

    print("\n" + "=" * 72)
    print("Threat behavior graph (paper Figure 2, middle)")
    print("=" * 72)
    for line in extraction.graph.to_lines():
        print(" ", line)

    ioc_score = score_ioc_extraction(extraction, FIGURE2_REPORT)
    relation_score = score_relation_extraction(extraction, FIGURE2_REPORT)
    print(f"\nIOC extraction:      {ioc_score.as_dict()}")
    print(f"Relation extraction: {relation_score.as_dict()}")

    # -- Query synthesis -----------------------------------------------------
    query = QuerySynthesizer().synthesize(extraction.graph)
    print("\n" + "=" * 72)
    print("Synthesized TBQL query (paper Figure 2, right)")
    print("=" * 72)
    print(format_query(query))

    # -- Query execution ------------------------------------------------------
    simulation = (
        HostSimulator(seed=7)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
        .run()
    )
    raptor = ThreatRaptor()
    raptor.load_trace(simulation.trace)
    result = raptor.execute_query(query)

    print("\n" + "=" * 72)
    print("Matched system auditing records")
    print("=" * 72)
    print(result.to_table())

    truth = simulation.ground_truth("figure2-data-leakage")
    hunting = score_hunting(result.all_matched_event_ids(), truth.event_ids)
    print(f"\nHunting accuracy vs. injected ground truth: {hunting.as_dict()}")


if __name__ == "__main__":
    main()
