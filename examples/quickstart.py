#!/usr/bin/env python3
"""Quickstart: hunt a multi-step threat described in an OSCTI report.

The example follows the paper's architecture end to end:

1. collect system audit logs (here: a deterministic host simulator standing in
   for Sysdig, with benign workloads plus the Figure 2 data-leakage chain);
2. store the logs in the relational + graph backends;
3. extract a threat behavior graph from the OSCTI report text;
4. synthesize a TBQL query from the graph;
5. execute the query and inspect the matched system auditing records.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ThreatRaptor
from repro.auditing.workload import Figure2DataLeakageChain, HostSimulator
from repro.data import FIGURE2_REPORT


def main() -> None:
    # 1. Simulate a monitored host: routine benign activity with the paper's
    #    Figure 2 data-leakage chain buried in the middle.
    simulation = (
        HostSimulator(seed=7)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
        .run()
    )
    print("Simulated audit trace:", simulation.trace.summary())

    # 2. Load the trace into ThreatRaptor's storage component.
    raptor = ThreatRaptor()
    load_report = raptor.load_trace(simulation.trace)
    if load_report.reduction is not None:
        print(
            f"Causality Preserved Reduction: {load_report.reduction.events_before} -> "
            f"{load_report.reduction.events_after} events "
            f"({load_report.reduction.reduction_factor:.2f}x)"
        )

    # 3-5. Hunt: extraction, synthesis and execution in one call.
    hunt = raptor.hunt(FIGURE2_REPORT.text)

    print("\nThreat behavior graph extracted from the report:")
    for line in hunt.behavior_graph.to_lines():
        print(" ", line)

    print("\nSynthesized TBQL query:")
    print(hunt.query_text)

    print("\nMatched system auditing records:")
    print(hunt.result.to_table())

    truth = simulation.ground_truth("figure2-data-leakage")
    matched = hunt.result.all_matched_event_ids()
    print(
        f"\nHunting outcome: {len(matched & truth.event_ids)} of "
        f"{len(truth.event_ids)} injected attack events matched, "
        f"{len(matched - truth.event_ids)} false positives."
    )


if __name__ == "__main__":
    main()
