#!/usr/bin/env python3
"""Continuous hunting: a standing query over a streamed audit log.

Where ``quickstart.py`` loads a whole trace and hunts once, this example runs
the pipeline the way a deployment would: audit events arrive continuously and
the synthesized TBQL query stays *standing*, re-evaluated after every
micro-batch so the alert fires while the attack data is still streaming in.

1. simulate a monitored host (benign workloads + the Figure 2 data-leakage
   chain buried in the middle);
2. register a standing hunt synthesized from the paper's Figure 2 OSCTI
   report;
3. replay the host's audit stream in micro-batches through the
   :class:`~repro.streaming.service.HuntingService` — incremental Causality
   Preserved Reduction, watermark-windowed re-evaluation, alert dedup;
4. verify the streamed hunt matched exactly the records a one-shot batch
   ``hunt()`` over the full trace finds.

Run with::

    python examples/streaming_hunt.py
"""

from __future__ import annotations

from repro import ThreatRaptor
from repro.auditing.workload import Figure2DataLeakageChain, HostSimulator
from repro.data import FIGURE2_REPORT
from repro.streaming import CallbackSink, ReplaySource


def main() -> None:
    # 1. Simulate the monitored host.
    simulation = (
        HostSimulator(seed=7)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
        .run()
    )
    total_events = len(simulation.trace.events)
    batch_size = max(1, total_events // 12)  # >= 10 micro-batches
    print(f"Streaming {total_events} audit events in micro-batches of {batch_size}")

    # 2. A continuous hunting service with a standing query synthesized from
    #    the OSCTI report at registration time.
    raptor = ThreatRaptor()
    service = raptor.watch(FIGURE2_REPORT.text, name="figure2", batch_size=batch_size)
    service.add_sink(CallbackSink(lambda alert: print(f"  ALERT {alert.describe()}")))

    print("\nStanding TBQL query:")
    print(service.hunts[0].query_text)
    print("\nAlerts raised while streaming:")

    # 3. Replay the audit stream through the service.
    alerts = service.run(ReplaySource(simulation))

    stats = service.statistics()
    ingest = stats["ingest"]
    print(
        f"\nIngested {ingest['events_ingested']} events in {ingest['batches']} batches "
        f"({ingest['events_per_second']:.0f} events/s), stored {ingest['events_stored']} "
        f"after incremental reduction"
    )
    hunt_stats = stats["hunts"]["figure2"]
    print(
        f"Standing query evaluated {hunt_stats['evaluations']} times "
        f"({hunt_stats['eval_seconds']:.3f}s total), raised {hunt_stats['alerts']} alert(s)"
    )

    # 4. The streamed hunt must find exactly what a one-shot batch hunt finds.
    batch_raptor = ThreatRaptor()
    batch_raptor.load_trace(simulation.trace)
    batch_matched = batch_raptor.hunt(FIGURE2_REPORT.text).result.all_matched_event_ids()
    streamed_matched = service.matched_event_ids("figure2")
    assert streamed_matched == batch_matched, (streamed_matched, batch_matched)
    assert len(alerts) == hunt_stats["alerts"]
    print(
        f"\nStreamed hunt matched the same {len(streamed_matched)} audit records as a "
        f"one-shot batch hunt — no duplicates, no misses."
    )

    truth = simulation.ground_truth("figure2-data-leakage")
    recalled = streamed_matched & truth.event_ids
    print(
        f"Ground truth: {len(recalled)}/{len(truth.event_ids)} malicious events recalled"
    )


if __name__ == "__main__":
    main()
