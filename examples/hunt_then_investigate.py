#!/usr/bin/env python3
"""Hunt with a TBQL query, then expand the hit into the full attack by provenance.

Threat hunting (this paper) and attack investigation (its companion systems)
compose naturally: the synthesized TBQL query pins down a handful of malicious
records, and causality tracking over the audit graph expands them into the
complete attack context — backwards to the root cause (the Shellshock
connection that spawned the attacker shell) and forwards to the impact (the
exfiltrated files and the C2 channel).

Run with::

    python examples/hunt_then_investigate.py
"""

from __future__ import annotations

from repro import ThreatRaptor, ThreatRaptorConfig
from repro.auditing.workload import PasswordCrackingAttack, HostSimulator
from repro.data import report_by_name
from repro.storage.graph.provenance import ProvenanceTracker


def main() -> None:
    # Simulate the monitored host and load it.  Reduction is disabled so the
    # provenance rendering shows every original audit event.
    simulation = (
        HostSimulator(seed=51)
        .add_default_benign()
        .add_attack(PasswordCrackingAttack())
        .run()
    )
    raptor = ThreatRaptor(ThreatRaptorConfig(apply_reduction=False))
    raptor.load_trace(simulation.trace)

    # Step 1: hunt using the OSCTI description of the attack.
    hunt = raptor.hunt(report_by_name("password-cracking").text)
    print("Synthesized TBQL query:")
    print(hunt.query_text)
    print("\nMatched records:")
    print(hunt.result.to_table(limit=5))

    matched_events = sorted(hunt.result.all_matched_event_ids())
    if not matched_events:
        print("no matches — nothing to investigate")
        return

    # Step 2: investigate.  Take the first matched event (the cracker reading
    # /etc/shadow in this scenario) and expand it in both directions.
    graph = raptor.store.graph
    tracker = ProvenanceTracker(graph)
    poi_event = graph.edge(matched_events[-1])
    poi_process = poi_event.source_id

    print("\nBackward tracking (root cause) from the matched process:")
    backward = tracker.backward(poi_process)
    for line in backward.to_lines(graph)[:15]:
        print(" ", line)

    print("\nForward tracking (impact) of the first matched event:")
    forward = tracker.impact_of_event(matched_events[0])
    for line in forward.to_lines(graph)[:15]:
        print(" ", line)

    truth = simulation.ground_truth("password-cracking")
    recovered = (backward.event_ids() | forward.event_ids()) & truth.event_ids
    print(
        f"\nInvestigation recovered {len(recovered)} of {len(truth.event_ids)} "
        f"injected attack events starting from {len(matched_events)} hunted records."
    )


if __name__ == "__main__":
    main()
