"""Unit tests for the property-graph store."""

from __future__ import annotations

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import QueryError
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.model import Edge, Node, Path


@pytest.fixture
def graph() -> GraphDatabase:
    graph = GraphDatabase()
    entities = [
        ProcessEntity(entity_id=1, exename="/bin/tar", pid=10),
        ProcessEntity(entity_id=2, exename="/bin/bzip2", pid=11),
        FileEntity(entity_id=3, name="/etc/passwd"),
        FileEntity(entity_id=4, name="/tmp/upload.tar"),
    ]
    events = [
        SystemEvent(1, 1, 3, Operation.READ, EntityType.FILE, 100, 110),
        SystemEvent(2, 1, 4, Operation.WRITE, EntityType.FILE, 200, 210),
        SystemEvent(3, 2, 4, Operation.READ, EntityType.FILE, 300, 310),
    ]
    graph.load_trace(AuditTrace(entities=entities, events=events))
    return graph


class TestModel:
    def test_node_matches(self):
        node = Node(node_id=1, label="file", properties={"name": "/etc/passwd"})
        assert node.matches("file", name="/etc/passwd")
        assert not node.matches("process")
        assert not node.matches("file", name="/etc/shadow")

    def test_edge_time_accessors(self):
        edge = Edge(edge_id=1, source_id=1, target_id=2, relationship="read",
                    properties={"starttime": 5, "endtime": 9})
        assert edge.start_time == 5
        assert edge.end_time == 9
        assert edge.get("amount", 0) == 0

    def test_path_invariant(self):
        node_a = Node(1, "process")
        node_b = Node(2, "file")
        edge = Edge(1, 1, 2, "read")
        path = Path(nodes=(node_a, node_b), edges=(edge,))
        assert path.length == 1
        assert path.start is node_a and path.end is node_b
        with pytest.raises(ValueError):
            Path(nodes=(node_a,), edges=(edge,))


class TestGraphDatabase:
    def test_load_counts(self, graph: GraphDatabase):
        assert graph.node_count() == 4
        assert graph.edge_count() == 3

    def test_duplicate_node_rejected(self, graph: GraphDatabase):
        with pytest.raises(QueryError, match="duplicate node"):
            graph.add_node(Node(node_id=1, label="file"))

    def test_duplicate_edge_rejected(self, graph: GraphDatabase):
        with pytest.raises(QueryError, match="duplicate edge"):
            graph.add_edge(Edge(edge_id=1, source_id=1, target_id=3, relationship="read"))

    def test_edge_with_unknown_endpoint_rejected(self, graph: GraphDatabase):
        with pytest.raises(QueryError, match="unknown source"):
            graph.add_edge(Edge(edge_id=99, source_id=999, target_id=3, relationship="read"))
        with pytest.raises(QueryError, match="unknown target"):
            graph.add_edge(Edge(edge_id=99, source_id=1, target_id=999, relationship="read"))

    def test_node_and_edge_lookup(self, graph: GraphDatabase):
        assert graph.node(1).get("exename") == "/bin/tar"
        assert graph.edge(1).relationship == "read"
        with pytest.raises(QueryError):
            graph.node(999)
        with pytest.raises(QueryError):
            graph.edge(999)

    def test_nodes_with_label(self, graph: GraphDatabase):
        assert {node.node_id for node in graph.nodes_with_label("process")} == {1, 2}
        assert list(graph.nodes_with_label("unknown")) == []

    def test_find_nodes_uses_property_index(self, graph: GraphDatabase):
        found = graph.find_nodes("file", name="/etc/passwd")
        assert [node.node_id for node in found] == [3]

    def test_find_nodes_without_label(self, graph: GraphDatabase):
        found = graph.find_nodes(exename="/bin/tar")
        assert [node.node_id for node in found] == [1]

    def test_find_nodes_no_match(self, graph: GraphDatabase):
        assert graph.find_nodes("file", name="/nonexistent") == []

    def test_outgoing_edges_by_relationship(self, graph: GraphDatabase):
        reads = list(graph.outgoing_edges(1, "read"))
        all_edges = list(graph.outgoing_edges(1))
        assert [edge.edge_id for edge in reads] == [1]
        assert {edge.edge_id for edge in all_edges} == {1, 2}

    def test_incoming_edges(self, graph: GraphDatabase):
        incoming = list(graph.incoming_edges(4))
        assert {edge.edge_id for edge in incoming} == {2, 3}
        assert [edge.edge_id for edge in graph.incoming_edges(4, "read")] == [3]

    def test_neighbors(self, graph: GraphDatabase):
        assert {node.node_id for node in graph.neighbors(1)} == {3, 4}

    def test_outgoing_of_unknown_node_is_empty(self, graph: GraphDatabase):
        assert list(graph.outgoing_edges(999)) == []

    def test_statistics(self, graph: GraphDatabase):
        stats = graph.statistics()
        assert stats["nodes"] == 4
        assert stats["edges"] == 3
        assert stats["nodes_by_label"]["process"] == 2
        assert stats["edges_by_relationship"]["read"] == 2
