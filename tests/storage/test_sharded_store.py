"""Tests for host-partitioned sharded audit storage.

Routing must be deterministic across processes (crc32, not the randomized
built-in ``hash``), entities must follow their events into every shard that
needs them for local joins, and the sharded pipeline must answer hunts — ad
hoc, prepared and streaming — identically to the single-store layout while
compiling each standing query exactly once.
"""

from __future__ import annotations

import zlib

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.errors import StorageError
from repro.scenarios import generate_campaigns
from repro.storage.sharded import ShardedAuditStore, shard_for_host
from repro.streaming import HuntingService, ReplaySource
from repro.tbql.prepared import ShardedPreparedQuery

HOSTS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]
SHARDS = 4


def _multi_host_trace() -> AuditTrace:
    """Six hosts' worth of entities and events, one process + file per host."""
    entities = []
    events = []
    for index, host in enumerate(HOSTS):
        process = ProcessEntity(
            entity_id=index * 10 + 1, host=host, exename=f"/bin/worker-{host}", pid=100 + index
        )
        target = FileEntity(entity_id=index * 10 + 2, host=host, name=f"/var/{host}/data")
        entities.extend([process, target])
        for offset in range(5):
            events.append(
                SystemEvent(
                    event_id=index * 100 + offset,
                    subject_id=process.entity_id,
                    object_id=target.entity_id,
                    operation=Operation.READ if offset % 2 == 0 else Operation.WRITE,
                    object_type=EntityType.FILE,
                    start_time=10_000 + offset * 1_000,
                    end_time=10_500 + offset * 1_000,
                    amount=64,
                    host=host,
                )
            )
    return AuditTrace(entities=entities, events=events)


class TestRouting:
    def test_crc32_routing_is_deterministic(self):
        for host in HOSTS:
            expected = zlib.crc32(host.encode("utf-8")) % SHARDS
            assert shard_for_host(host, SHARDS) == expected
            assert shard_for_host(host, SHARDS) == shard_for_host(host, SHARDS)

    def test_hosts_spread_across_shards(self):
        indexes = {shard_for_host(host, SHARDS) for host in HOSTS}
        assert len(indexes) > 1  # six hosts cannot all collapse to one shard

    def test_events_never_leave_their_hosts_shard(self):
        store = ShardedAuditStore(shards=SHARDS, apply_reduction=False)
        store.load_trace(_multi_host_trace())
        for index, child in enumerate(store.shard_stores):
            trace = child.loaded_trace
            if trace is None:
                continue
            assert all(shard_for_host(event.host, SHARDS) == index for event in trace.events)

    def test_zero_shards_rejected(self):
        with pytest.raises(StorageError):
            ShardedAuditStore(shards=0)


class TestEntityReplication:
    def test_event_endpoints_follow_the_event(self):
        """A cross-host event's entities are replicated into the event's shard."""
        remote = ProcessEntity(entity_id=1, host="alpha", exename="/bin/ssh", pid=7)
        local = FileEntity(entity_id=2, host="bravo", name="/var/log/auth")
        event = SystemEvent(5, 1, 2, Operation.WRITE, EntityType.FILE, 100, 200, 64, host="bravo")
        store = ShardedAuditStore(shards=SHARDS, apply_reduction=False)
        store.load_trace(AuditTrace(entities=[remote, local], events=[event]))

        event_shard = store.shard_for("bravo")
        shard_trace = store.shard_stores[event_shard].loaded_trace
        assert shard_trace is not None
        assert {entity.entity_id for entity in shard_trace.entities} >= {1, 2}

    def test_replication_is_idempotent(self):
        trace = _multi_host_trace()
        store = ShardedAuditStore(shards=SHARDS, apply_reduction=False)
        store.load_trace(trace)
        merged = store.loaded_trace
        assert merged is not None
        # Replicated copies collapse in the merged view: same ids, once each.
        assert sorted(entity.entity_id for entity in merged.entities) == sorted(
            entity.entity_id for entity in trace.entities
        )

    def test_merged_view_is_deterministic(self):
        trace = _multi_host_trace()
        first = ShardedAuditStore(shards=SHARDS, apply_reduction=False)
        first.load_trace(trace)
        second = ShardedAuditStore(shards=SHARDS, apply_reduction=False)
        second.load_trace(trace)
        assert first.loaded_trace is not None and second.loaded_trace is not None
        assert [event.event_id for event in first.loaded_trace.events] == [
            event.event_id for event in second.loaded_trace.events
        ]

    def test_statistics_carry_per_shard_detail(self):
        store = ShardedAuditStore(shards=SHARDS, apply_reduction=False)
        store.load_trace(_multi_host_trace())
        stats = store.statistics()
        assert stats["shards"]["count"] == SHARDS
        assert len(stats["shards"]["stores"]) == SHARDS


@pytest.fixture(scope="module")
def campaign():
    return generate_campaigns(1, base_seed=1200)[0]


def _matched(raptor: ThreatRaptor, campaign) -> dict[str, set[int]]:
    return {
        hunt.name: raptor.execute_query(hunt.query_text).all_matched_event_ids()
        for hunt in campaign.hunts
    }


class TestShardedQueryParity:
    def test_adhoc_hunts_match_single_store(self, campaign):
        baseline = ThreatRaptor()
        baseline.load_trace(campaign.trace)
        sharded = ThreatRaptor(ThreatRaptorConfig(shards=SHARDS))
        sharded.load_trace(campaign.trace)
        assert _matched(sharded, campaign) == _matched(baseline, campaign)

    def test_streaming_alerts_match_single_store(self, campaign):
        def run(raptor: ThreatRaptor):
            service = HuntingService(raptor=raptor, batch_size=96)
            for hunt in campaign.hunts:
                service.register_hunt(hunt.name, query=hunt.query_text)
            service.run(ReplaySource(campaign.trace))
            matched = {
                hunt.name: service.matched_event_ids(hunt.name) for hunt in campaign.hunts
            }
            alerts = sum(
                hunt["alerts"] for hunt in service.statistics()["hunts"].values()
            )
            return matched, alerts

        baseline = run(ThreatRaptor())
        sharded = run(ThreatRaptor(ThreatRaptorConfig(shards=SHARDS)))
        assert sharded == baseline


class TestSharedPlanCache:
    def test_one_compile_serves_every_shard(self, campaign):
        raptor = ThreatRaptor(ThreatRaptorConfig(shards=SHARDS))
        raptor.load_trace(campaign.trace)
        prepared = raptor.prepare_query(campaign.hunts[0].query_text)
        assert isinstance(prepared, ShardedPreparedQuery)
        prepared.execute()
        info = prepared.cache_info()
        # N shards execute one compiled plan: at most one cold compile, the
        # rest are cache hits.
        assert info["hits"] >= SHARDS - 1

    def test_reprepare_returns_the_cached_plan(self, campaign):
        raptor = ThreatRaptor(ThreatRaptorConfig(shards=SHARDS))
        raptor.load_trace(campaign.trace)
        query_text = campaign.hunts[0].query_text
        first = raptor.prepare_query(query_text)
        second = raptor.prepare_query(query_text)
        assert second is first
        assert raptor.plan_cache is not None
        assert raptor.plan_cache.info()["hits"] >= 1

    def test_single_shard_pipeline_has_no_shared_cache(self):
        raptor = ThreatRaptor()
        assert raptor.plan_cache is None
