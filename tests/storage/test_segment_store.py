"""Durability tests for the on-disk segmented store.

Covers the failure edges the in-memory store never sees: torn/truncated
column files, corrupt manifests, sealed-segment immutability, surviving a
restart, and crash-during-seal recovery (an orphan staging directory left by
a crash between column-file publish and manifest publish must be cleaned up,
never half-read).
"""

from __future__ import annotations

import json

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.errors import SegmentError
from repro.scenarios import CrashRecoveryHarness, generate_campaigns
from repro.storage.loader import AuditStore
from repro.storage.relational.database import RelationalDatabase
from repro.storage.relational.expression import Between, Column, Comparison, Like, Literal
from repro.storage.relational.query import SelectQuery
from repro.storage.segment import (
    MANIFEST_NAME,
    ColumnReader,
    SegmentedRelationalDatabase,
    write_int_column,
    write_string_column,
)


def _trace(events: int = 40) -> AuditTrace:
    """A small two-process trace with strictly increasing timestamps."""
    entities = [
        ProcessEntity(entity_id=1, exename="/bin/tar", pid=10),
        ProcessEntity(entity_id=2, exename="/usr/bin/curl", pid=11),
        FileEntity(entity_id=3, name="/etc/passwd"),
        FileEntity(entity_id=4, name="/tmp/upload.tar"),
    ]
    rows = [
        SystemEvent(
            event_id=index + 1,
            subject_id=1 if index % 2 == 0 else 2,
            object_id=3 if index % 3 == 0 else 4,
            operation=Operation.READ if index % 2 == 0 else Operation.WRITE,
            object_type=EntityType.FILE,
            start_time=1_000 + index * 100,
            end_time=1_050 + index * 100,
            amount=64,
        )
        for index in range(events)
    ]
    return AuditTrace(entities=entities, events=rows)


def _join_query() -> SelectQuery:
    query = SelectQuery()
    query.add_table("events", "e")
    query.add_table("entities", "s")
    query.add_table("entities", "o")
    query.add_join("e", "srcid", "s", "id")
    query.add_join("e", "dstid", "o", "id")
    query.add_filter("e", Comparison(Column("optype"), "=", Literal("read")))
    query.add_filter("s", Like(Column("exename"), "%tar%"))
    query.add_output("s", "exename", "subject")
    query.add_output("o", "name", "object")
    query.add_output("e", "id", "event")
    return query


class TestColumnCodecs:
    def test_int_roundtrip_with_nulls(self, tmp_path):
        path = tmp_path / "events.starttime.col"
        values = [5, None, -3, 0, 2**40, None]
        stats = write_int_column(path, values)
        assert stats["rows"] == 6 and stats["nulls"] == 2
        assert ColumnReader(path).values() == values

    def test_string_roundtrip_dictionary_encoded(self, tmp_path):
        path = tmp_path / "events.optype.col"
        values = ["read", "write", "read", None, "read"]
        stats = write_string_column(path, values)
        assert stats["distinct"] == 2
        assert ColumnReader(path).values() == values

    def test_truncated_column_file_is_a_segment_error(self, tmp_path):
        path = tmp_path / "torn.col"
        write_int_column(path, list(range(100)))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write
        with pytest.raises(SegmentError):
            ColumnReader(path).values()

    def test_flipped_bit_fails_the_checksum(self, tmp_path):
        path = tmp_path / "corrupt.col"
        write_int_column(path, list(range(100)))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SegmentError):
            ColumnReader(path).values()

    def test_wrong_magic_rejected_on_open(self, tmp_path):
        path = tmp_path / "junk.col"
        path.write_bytes(b"NOPE" + bytes(32))
        with pytest.raises(SegmentError):
            ColumnReader(path)


class TestManifestCorruption:
    def test_corrupt_manifest_is_a_segment_error(self, tmp_path):
        database = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        database.load_trace(_trace())
        database.seal()
        (tmp_path / MANIFEST_NAME).write_text("{ not json", encoding="utf-8")
        with pytest.raises(SegmentError):
            SegmentedRelationalDatabase(tmp_path, segment_rows=8)

    def test_manifest_version_mismatch_rejected(self, tmp_path):
        database = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        database.load_trace(_trace())
        database.seal()
        manifest_path = tmp_path / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        payload["version"] = 999
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SegmentError):
            SegmentedRelationalDatabase(tmp_path, segment_rows=8)

    def test_manifest_referencing_missing_segment_rejected(self, tmp_path):
        database = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        database.load_trace(_trace())
        database.seal()
        victim = tmp_path / database.segment_readers[0].name
        for child in victim.iterdir():
            child.unlink()
        victim.rmdir()
        with pytest.raises(SegmentError):
            SegmentedRelationalDatabase(tmp_path, segment_rows=8)

    def test_torn_column_in_live_segment_surfaces_on_read(self, tmp_path):
        database = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        database.load_trace(_trace())
        database.seal()
        segment_dir = tmp_path / database.segment_readers[0].name
        column = segment_dir / "events.starttime.col"
        column.write_bytes(column.read_bytes()[:10])
        reopened = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        with pytest.raises(SegmentError):
            reopened.execute(_join_query())


class TestSealedSegmentImmutability:
    def test_appends_never_touch_sealed_files(self, tmp_path):
        database = SegmentedRelationalDatabase(tmp_path, segment_rows=16)
        database.load_trace(_trace(events=40))
        assert database.sealed_segments, "seal threshold should have been crossed"
        snapshot = {
            path: path.read_bytes()
            for segment in database.segment_readers
            for path in sorted((tmp_path / segment.name).iterdir())
        }
        database.append_events(
            [
                SystemEvent(900, 1, 4, Operation.WRITE, EntityType.FILE, 99_000, 99_100, 64),
            ]
        )
        database.seal()
        for path, blob in snapshot.items():
            assert path.read_bytes() == blob, f"sealed file {path.name} was rewritten"

    def test_results_match_in_memory_store(self, tmp_path):
        trace = _trace(events=60)
        memory = RelationalDatabase()
        memory.load_trace(trace)
        segmented = SegmentedRelationalDatabase(tmp_path, segment_rows=16)
        segmented.load_trace(trace)
        expected = memory.execute(_join_query())
        actual = segmented.execute(_join_query())
        assert sorted(actual.rows) == sorted(expected.rows)

    def test_time_window_prunes_segments(self, tmp_path):
        database = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        database.load_trace(_trace(events=64))
        database.seal()
        assert database.sealed_segments >= 4
        query = _join_query()
        query.add_filter("e", Between(Column("starttime"), 1_000, 1_400))
        database.reset_scan_counters()
        database.execute(query)
        stats = database.statistics()["segments"]
        assert stats["pruned"] > 0
        assert stats["pruned"] + stats["scanned"] == database.sealed_segments


class TestRestartSurvival:
    def test_audit_store_rehydrates_from_data_dir(self, tmp_path):
        trace = _trace(events=50)
        store = AuditStore(storage="segments", data_dir=tmp_path, apply_reduction=False)
        store.load_trace(trace)
        store.flush()
        baseline = store.relational.execute(_join_query())

        reopened = AuditStore(storage="segments", data_dir=tmp_path, apply_reduction=False)
        assert reopened.loaded_trace is not None
        assert len(reopened.loaded_trace.events) == len(trace.events)
        assert reopened.graph.edge_count() == store.graph.edge_count()
        result = reopened.relational.execute(_join_query())
        assert sorted(result.rows) == sorted(baseline.rows)

    def test_orphan_staging_dir_from_crashed_seal_is_cleaned(self, tmp_path):
        database = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        database.load_trace(_trace())
        database.seal()
        # A crash between publishing column files and publishing the manifest
        # leaves a fully-written directory the manifest never references...
        orphan = tmp_path / "seg-00099"
        orphan.mkdir()
        (orphan / "events.starttime.col").write_bytes(b"partial")
        staging = tmp_path / "seg-00100.tmp"
        staging.mkdir()
        (staging / "events.optype.col").write_bytes(b"partial")
        # ...and reopening must drop both without surfacing their contents.
        reopened = SegmentedRelationalDatabase(tmp_path, segment_rows=8)
        assert not orphan.exists() and not staging.exists()
        assert reopened.sealed_segments == database.sealed_segments
        result = reopened.execute(_join_query())
        assert sorted(result.rows) == sorted(database.execute(_join_query()).rows)


class TestCrashDuringSegmentedHunt:
    def test_kill_and_resume_matches_uninterrupted_run(self, tmp_path):
        """CrashRecoveryHarness over a segmented pipeline: clean journal."""
        campaign = generate_campaigns(1, base_seed=1200)[0]

        def factory() -> ThreatRaptor:
            return ThreatRaptor(
                ThreatRaptorConfig(storage="segments", segment_rows=128)
            )

        harness = CrashRecoveryHarness(
            tmp_path, batch_size=96, pipeline_factory=factory
        )
        baseline_bytes, baseline_matched = harness.uninterrupted(campaign)
        assert baseline_bytes
        outcome = harness.crash_and_resume(campaign, boundary=1)
        assert outcome.resumed
        assert outcome.journal_bytes == baseline_bytes
        assert outcome.matched == baseline_matched
