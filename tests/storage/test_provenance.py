"""Unit tests for causal provenance tracking over the audit graph."""

from __future__ import annotations

import pytest

from repro.auditing.workload.attacks import Figure2DataLeakageChain, PasswordCrackingAttack
from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import WebServerWorkload
from repro.errors import QueryError
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.provenance import ProvenanceTracker, flow_endpoints
from repro.storage.loader import AuditStore


def _figure2_graph() -> tuple[GraphDatabase, ScenarioBuilder, Figure2DataLeakageChain]:
    builder = ScenarioBuilder(seed=13)
    WebServerWorkload(requests=20).generate(builder)
    attack = Figure2DataLeakageChain()
    attack.generate(builder)
    store = AuditStore(apply_reduction=False)
    store.load_trace(builder.build())
    return store.graph, builder, attack


def _entity_id(builder: ScenarioBuilder, **kwargs) -> int:
    for entity in builder.entities.all_entities():
        attributes = entity.attributes()
        if all(attributes.get(key) == value for key, value in kwargs.items()):
            return entity.entity_id
    raise AssertionError(f"entity {kwargs} not found")


class TestFlowEndpoints:
    def test_read_flows_object_to_subject(self):
        graph, builder, _ = _figure2_graph()
        tar_id = _entity_id(builder, exename="/bin/tar")
        passwd_id = _entity_id(builder, name="/etc/passwd")
        read_edge = next(
            edge for edge in graph.outgoing_edges(tar_id, "read") if edge.target_id == passwd_id
        )
        assert flow_endpoints(read_edge) == (passwd_id, tar_id)

    def test_write_flows_subject_to_object(self):
        graph, builder, _ = _figure2_graph()
        tar_id = _entity_id(builder, exename="/bin/tar")
        write_edge = next(iter(graph.outgoing_edges(tar_id, "write")))
        assert flow_endpoints(write_edge) == (tar_id, write_edge.target_id)


class TestBackwardTracking:
    def test_exfiltration_traces_back_to_passwd(self):
        """Backward from the C2 connection reaches /etc/passwd through the chain."""
        graph, builder, attack = _figure2_graph()
        c2_id = _entity_id(builder, dstip=Figure2DataLeakageChain.C2_IP)
        result = ProvenanceTracker(graph).backward(c2_id)
        reached_names = {
            graph.node(node_id).get("name")
            for node_id in result.entity_ids()
            if graph.node(node_id).label == "file"
        }
        assert {"/etc/passwd", "/tmp/upload.tar", "/tmp/upload.tar.bz2", "/tmp/upload"} <= reached_names
        assert attack.ground_truth.event_ids <= result.event_ids()

    def test_backward_excludes_unrelated_benign_activity(self):
        graph, builder, _ = _figure2_graph()
        c2_id = _entity_id(builder, dstip=Figure2DataLeakageChain.C2_IP)
        result = ProvenanceTracker(graph).backward(c2_id)
        reached = {
            graph.node(node_id).get("exename")
            for node_id in result.entity_ids()
            if graph.node(node_id).label == "process"
        }
        assert "/usr/sbin/nginx" not in reached

    def test_backward_respects_time_bound(self):
        graph, builder, attack = _figure2_graph()
        upload_id = _entity_id(builder, name="/tmp/upload.tar")
        first_event_time = min(
            graph.edge(event_id).start_time for event_id in attack.ground_truth.event_ids
        )
        result = ProvenanceTracker(graph).backward(upload_id, at_time=first_event_time - 1)
        # Nothing flowed into the file before the attack started.
        assert result.event_ids() == set()

    def test_backward_depth_limit(self):
        graph, builder, _ = _figure2_graph()
        c2_id = _entity_id(builder, dstip=Figure2DataLeakageChain.C2_IP)
        shallow = ProvenanceTracker(graph, max_depth=1).backward(c2_id)
        deep = ProvenanceTracker(graph, max_depth=8).backward(c2_id)
        assert len(shallow.edges) < len(deep.edges)
        assert max(shallow.depths.values()) <= 1

    def test_unknown_entity_rejected(self):
        graph, _, _ = _figure2_graph()
        with pytest.raises(QueryError):
            ProvenanceTracker(graph).backward(10_000_000)

    def test_invalid_depth_rejected(self):
        graph, _, _ = _figure2_graph()
        with pytest.raises(ValueError):
            ProvenanceTracker(graph, max_depth=0)


class TestForwardTracking:
    def test_passwd_forward_reaches_c2(self):
        graph, builder, _ = _figure2_graph()
        passwd_id = _entity_id(builder, name="/etc/passwd")
        result = ProvenanceTracker(graph).forward(passwd_id)
        reached_ips = {
            graph.node(node_id).get("dstip")
            for node_id in result.entity_ids()
            if graph.node(node_id).label == "network"
        }
        assert Figure2DataLeakageChain.C2_IP in reached_ips

    def test_forward_respects_time_bound(self):
        graph, builder, attack = _figure2_graph()
        passwd_id = _entity_id(builder, name="/etc/passwd")
        last_event_time = max(
            graph.edge(event_id).end_time for event_id in attack.ground_truth.event_ids
        )
        result = ProvenanceTracker(graph).forward(passwd_id, at_time=last_event_time + 1)
        assert result.event_ids() == set()

    def test_impact_of_event(self):
        """Forward impact of the initial tar-reads-passwd event covers the chain."""
        graph, builder, attack = _figure2_graph()
        first_step = attack.ground_truth.steps[0]
        result = ProvenanceTracker(graph).impact_of_event(first_step.event_id)
        assert attack.ground_truth.event_ids <= result.event_ids()
        assert result.direction == "forward"

    def test_to_lines_renders_time_ordered(self):
        graph, builder, attack = _figure2_graph()
        first_step = attack.ground_truth.steps[0]
        result = ProvenanceTracker(graph).impact_of_event(first_step.event_id)
        lines = result.to_lines(graph)
        assert len(lines) == len(result.edges)
        assert any("/bin/tar" in line and "/etc/passwd" in line for line in lines)
        times = [int(line.split("]")[0][1:]) for line in lines]
        assert times == sorted(times)


class TestCombinedHuntThenTrack:
    def test_hunt_result_expands_to_full_attack(self):
        """Hunt the password-cracking attack, then expand one matched event forward."""
        builder = ScenarioBuilder(seed=19)
        WebServerWorkload(requests=10).generate(builder)
        attack = PasswordCrackingAttack()
        attack.generate(builder)
        store = AuditStore(apply_reduction=False)
        store.load_trace(builder.build())

        from repro.tbql.executor import execute_query

        result = execute_query(
            store,
            'proc p["%/tmp/crack%"] read file f["%/etc/shadow%"] as e return p, f',
        )
        assert len(result) == 1
        matched_event = next(iter(result.matched_event_ids["e"]))
        tracker = ProvenanceTracker(store.graph)
        backward = tracker.backward(store.graph.edge(matched_event).source_id)
        reached_ips = {
            store.graph.node(node_id).get("dstip")
            for node_id in backward.entity_ids()
            if store.graph.node(node_id).label == "network"
        }
        # The cracker binary was downloaded from the C2 host: backward tracking
        # from the cracker process reaches that address.
        assert PasswordCrackingAttack.C2_IP in reached_ips
