"""Unit tests for relational filter expressions."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.storage.relational.expression import (
    And,
    Between,
    Column,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpression,
    conjoin,
    equality_lookups,
    escape_like,
    like_has_wildcards,
    range_lookups,
    unescape_like,
)

ROW = {"name": "/etc/passwd", "size": 120, "optype": "read", "starttime": 500}


class TestBasicExpressions:
    def test_column_lookup(self):
        assert Column("name").evaluate(ROW) == "/etc/passwd"

    def test_column_missing_raises(self):
        with pytest.raises(QueryError):
            Column("missing").evaluate(ROW)

    def test_literal(self):
        assert Literal(42).evaluate(ROW) == 42

    def test_comparison_operators(self):
        assert Comparison(Column("size"), "=", Literal(120)).evaluate(ROW)
        assert Comparison(Column("size"), "!=", Literal(121)).evaluate(ROW)
        assert Comparison(Column("size"), "<", Literal(121)).evaluate(ROW)
        assert Comparison(Column("size"), ">=", Literal(120)).evaluate(ROW)
        assert not Comparison(Column("size"), ">", Literal(120)).evaluate(ROW)

    def test_comparison_with_none_is_false(self):
        assert not Comparison(Column("name"), "=", Literal(None)).evaluate(ROW)

    def test_comparison_mixed_types_falls_back_to_string(self):
        assert Comparison(Column("size"), "=", Literal("120")).evaluate(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison(Column("size"), "~~", Literal(1))


class TestLike:
    def test_percent_matches_any_run(self):
        assert Like(Column("name"), "%passwd%").evaluate(ROW)
        assert Like(Column("name"), "/etc/%").evaluate(ROW)
        assert not Like(Column("name"), "%shadow%").evaluate(ROW)

    def test_exact_pattern_without_wildcards(self):
        assert Like(Column("name"), "/etc/passwd").evaluate(ROW)
        assert not Like(Column("name"), "/etc/pass").evaluate(ROW)

    def test_underscore_matches_single_character(self):
        assert Like(Column("optype"), "rea_").evaluate(ROW)
        assert not Like(Column("optype"), "re_").evaluate(ROW)

    def test_case_insensitive(self):
        assert Like(Column("name"), "%PASSWD%").evaluate(ROW)

    def test_negated(self):
        assert Like(Column("name"), "%shadow%", negate=True).evaluate(ROW)

    def test_regex_metacharacters_are_literal(self):
        row = {"name": "file(1).txt"}
        assert Like(Column("name"), "file(1).txt").evaluate(row)
        assert not Like(Column("name"), "file(2).txt").evaluate(row)

    def test_to_sql(self):
        assert Like(Column("name"), "%x%").to_sql() == "name LIKE '%x%'"


class TestLikeEscaping:
    """Literal ``%``/``_`` in patterns (e.g. URL-encoded IOC paths)."""

    def test_escape_like_round_trips(self):
        assert escape_like("/tmp/a%20b") == r"/tmp/a\%20b"
        assert escape_like("a_b") == r"a\_b"
        assert escape_like("C:\\x") == "C:\\\\x"
        assert unescape_like(escape_like("/tmp/a%_\\b")) == "/tmp/a%_\\b"

    def test_escaped_percent_matches_literally(self):
        pattern = "%" + escape_like("a%20b") + "%"
        assert Like(Column("name"), pattern).evaluate({"name": "/tmp/a%20b.tar"})
        # Pre-fix the escaped ``\%`` degraded to a ``.*`` wildcard, so this
        # row matched too.
        assert not Like(Column("name"), pattern).evaluate({"name": "/tmp/aX20b.tar"})

    def test_escaped_underscore_matches_literally(self):
        assert Like(Column("name"), escape_like("a_b")).evaluate({"name": "a_b"})
        assert not Like(Column("name"), escape_like("a_b")).evaluate({"name": "axb"})

    def test_lone_backslash_stays_literal(self):
        assert Like(Column("name"), "C:\\temp%").evaluate({"name": "C:\\temp\\f"})

    def test_wildcard_detection_honors_escapes(self):
        assert like_has_wildcards("%x%")
        assert not like_has_wildcards(escape_like("a%b"))
        assert unescape_like(escape_like("a%b")) == "a%b"

    def test_to_sql_emits_escape_clause_only_when_needed(self):
        rendered = Like(Column("name"), escape_like("a%b")).to_sql()
        assert rendered == "name LIKE 'a\\%b' ESCAPE '\\'"
        assert "ESCAPE" not in Like(Column("name"), "%x%").to_sql()

    def test_equality_lookup_unescapes(self):
        lookups = equality_lookups(Like(Column("name"), escape_like("a%b")))
        assert lookups == {"name": "a%b"}


class TestCombinators:
    def test_and_or_not(self):
        a = Comparison(Column("size"), ">", Literal(100))
        b = Like(Column("name"), "%passwd%")
        assert And([a, b]).evaluate(ROW)
        assert Or([Not(a), b]).evaluate(ROW)
        assert not And([a, Not(b)]).evaluate(ROW)

    def test_operator_overloads(self):
        a = Comparison(Column("size"), ">", Literal(100))
        b = Like(Column("name"), "%passwd%")
        assert (a & b).evaluate(ROW)
        assert (a | ~b).evaluate(ROW)

    def test_flattened(self):
        a = Comparison(Column("size"), ">", Literal(100))
        b = Like(Column("name"), "%passwd%")
        c = Comparison(Column("optype"), "=", Literal("read"))
        nested = And([And([a, b]), c])
        assert len(nested.flattened()) == 3

    def test_columns_collected(self):
        a = Comparison(Column("size"), ">", Literal(100))
        b = Like(Column("name"), "%passwd%")
        assert And([a, b]).columns() == {"size", "name"}

    def test_conjoin_simplifies(self):
        assert isinstance(conjoin([]), TrueExpression)
        single = Comparison(Column("size"), ">", Literal(1))
        assert conjoin([single]) is single
        assert isinstance(conjoin([single, TrueExpression()]), Comparison)


class TestBetweenAndInList:
    def test_between_inclusive(self):
        assert Between(Column("starttime"), 500, 600).evaluate(ROW)
        assert Between(Column("starttime"), 400, 500).evaluate(ROW)
        assert not Between(Column("starttime"), 501, 600).evaluate(ROW)

    def test_in_list(self):
        assert InList(Column("optype"), ("read", "write")).evaluate(ROW)
        assert not InList(Column("optype"), ("write",)).evaluate(ROW)
        assert InList(Column("optype"), ("write",), negate=True).evaluate(ROW)

    def test_to_sql_rendering(self):
        assert "BETWEEN" in Between(Column("starttime"), 1, 2).to_sql()
        assert "IN ('read', 'write')" in InList(Column("optype"), ("read", "write")).to_sql()

    def test_empty_in_list_renders_valid_sql(self):
        # ``IN ()`` is a sqlite syntax error; the empty membership test must
        # render as a constant predicate instead.
        assert InList(Column("optype"), ()).to_sql() == "1=0"
        assert InList(Column("optype"), (), negate=True).to_sql() == "1=1"

    def test_empty_in_list_evaluation_matches_rendering(self):
        assert not InList(Column("optype"), ()).evaluate(ROW)
        assert InList(Column("optype"), (), negate=True).evaluate(ROW)


class TestIndexHints:
    def test_equality_lookups_from_conjunction(self):
        expression = And(
            [
                Comparison(Column("optype"), "=", Literal("read")),
                Like(Column("name"), "/etc/passwd"),
                Comparison(Column("size"), ">", Literal(10)),
            ]
        )
        lookups = equality_lookups(expression)
        assert lookups == {"optype": "read", "name": "/etc/passwd"}

    def test_equality_lookup_reversed_operands(self):
        expression = Comparison(Literal("read"), "=", Column("optype"))
        assert equality_lookups(expression) == {"optype": "read"}

    def test_like_with_wildcards_not_indexable(self):
        assert equality_lookups(Like(Column("name"), "%passwd%")) == {}

    def test_single_value_inlist_is_indexable(self):
        assert equality_lookups(InList(Column("optype"), ("read",))) == {"optype": "read"}

    def test_range_lookups(self):
        expression = And(
            [
                Comparison(Column("starttime"), ">=", Literal(100)),
                Comparison(Column("starttime"), "<", Literal(900)),
            ]
        )
        assert range_lookups(expression) == {"starttime": (100, 900)}

    def test_range_lookups_from_between(self):
        assert range_lookups(Between(Column("starttime"), 5, 10)) == {"starttime": (5, 10)}

    def test_range_bounds_tightened(self):
        expression = And(
            [
                Between(Column("starttime"), 0, 1000),
                Comparison(Column("starttime"), ">=", Literal(100)),
            ]
        )
        low, high = range_lookups(expression)["starttime"]
        assert (low, high) == (100, 1000)
