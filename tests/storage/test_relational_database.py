"""Unit tests for the relational database, planner and executor."""

from __future__ import annotations

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import QueryError
from repro.storage.relational.database import RelationalDatabase
from repro.storage.relational.expression import Between, Column, Comparison, Like, Literal
from repro.storage.relational.query import OrderBy, SelectQuery
from repro.storage.relational.sqlgen import count_query_lines, render_select


@pytest.fixture
def database() -> RelationalDatabase:
    database = RelationalDatabase()
    entities = [
        ProcessEntity(entity_id=1, exename="/bin/tar", pid=10),
        ProcessEntity(entity_id=2, exename="/usr/bin/curl", pid=11),
        FileEntity(entity_id=3, name="/etc/passwd"),
        FileEntity(entity_id=4, name="/tmp/upload.tar"),
    ]
    events = [
        SystemEvent(1, 1, 3, Operation.READ, EntityType.FILE, 100, 110, 10),
        SystemEvent(2, 1, 4, Operation.WRITE, EntityType.FILE, 200, 210, 10),
        SystemEvent(3, 2, 4, Operation.READ, EntityType.FILE, 300, 310, 10),
    ]
    trace = AuditTrace(entities=entities, events=events)
    database.load_trace(trace)
    return database


def _join_query(exename_pattern: str = "%/bin/tar%") -> SelectQuery:
    query = SelectQuery()
    query.add_table("events", "e")
    query.add_table("entities", "s")
    query.add_table("entities", "o")
    query.add_join("e", "srcid", "s", "id")
    query.add_join("e", "dstid", "o", "id")
    query.add_filter("e", Comparison(Column("optype"), "=", Literal("read")))
    query.add_filter("s", Like(Column("exename"), exename_pattern))
    query.add_output("s", "exename", "subject")
    query.add_output("o", "name", "object")
    return query


class TestLoading:
    def test_load_counts(self, database: RelationalDatabase):
        assert len(database.table("entities")) == 4
        assert len(database.table("events")) == 3
        assert len(database) == 7

    def test_unknown_table_rejected(self, database: RelationalDatabase):
        with pytest.raises(QueryError):
            database.table("nonexistent")

    def test_statistics(self, database: RelationalDatabase):
        stats = database.statistics()
        assert stats["entities"]["rows"] == 4
        assert "optype" in stats["events"]["hash_indexes"]


class TestExecution:
    def test_three_way_join(self, database: RelationalDatabase):
        result = database.execute(_join_query())
        assert result.columns == ("subject", "object")
        assert result.rows == (("/bin/tar", "/etc/passwd"),)

    def test_join_with_like_wildcard(self, database: RelationalDatabase):
        result = database.execute(_join_query("%curl%"))
        assert result.rows == (("/usr/bin/curl", "/tmp/upload.tar"),)

    def test_empty_result(self, database: RelationalDatabase):
        result = database.execute(_join_query("%nonexistent%"))
        assert len(result) == 0
        assert not result

    def test_projection_defaults_to_all_columns(self, database: RelationalDatabase):
        query = SelectQuery()
        query.add_table("events", "e")
        result = database.execute(query)
        assert len(result) == 3
        assert "e.optype" in result.columns

    def test_distinct(self, database: RelationalDatabase):
        query = SelectQuery(distinct=True)
        query.add_table("events", "e")
        query.add_output("e", "optype")
        result = database.execute(query)
        assert sorted(result.column("e.optype")) == ["read", "write"]

    def test_order_by_and_limit(self, database: RelationalDatabase):
        query = SelectQuery()
        query.add_table("events", "e")
        query.add_output("e", "id")
        query.order_by.append(OrderBy("e", "id", descending=True))
        query.limit = 2
        result = database.execute(query)
        assert result.column("e.id") == [3, 2]

    def test_time_window_filter(self, database: RelationalDatabase):
        query = SelectQuery()
        query.add_table("events", "e")
        query.add_filter("e", Between(Column("starttime"), 150, 350))
        query.add_output("e", "id")
        result = database.execute(query)
        assert sorted(result.column("e.id")) == [2, 3]

    def test_cross_filter(self, database: RelationalDatabase):
        query = _join_query("%")
        query.cross_filters.append(
            Comparison(Column("s.id"), "=", Column("e.srcid"))
        )
        result = database.execute(query)
        assert len(result) == 2  # both read events

    def test_result_as_dicts_and_column(self, database: RelationalDatabase):
        result = database.execute(_join_query())
        assert result.as_dicts() == [{"subject": "/bin/tar", "object": "/etc/passwd"}]
        assert result.column("subject") == ["/bin/tar"]
        with pytest.raises(QueryError):
            result.column("missing")

    def test_result_iter_rows(self, database: RelationalDatabase):
        result = database.execute(_join_query("%"))
        assert list(result.iter_rows()) == list(result.rows)
        objects = [row for row in result.iter_rows(columns=["object"])]
        assert objects == [(value,) for value in result.column("object")]
        reordered = list(result.iter_rows(columns=["object", "subject"]))
        assert reordered == [(obj, subj) for subj, obj in result.rows]
        with pytest.raises(QueryError):
            next(result.iter_rows(columns=["missing"]))

    def test_result_column_groups_and_views(self, database: RelationalDatabase):
        query = _join_query()
        query.projection = []
        query.add_output("s", "exename", "proc.exename")
        query.add_output("o", "name", "file.name")
        query.add_output("e", "optype", "event.optype")
        result = database.execute(query)
        groups = result.column_groups()
        assert set(groups) == {"proc", "file", "event"}
        from repro.storage.relational.query import RowFieldView

        view = RowFieldView(result.rows[0], groups["proc"])
        assert view["exename"] == "/bin/tar"
        assert view.get("missing") is None
        assert dict(view) == {"exename": "/bin/tar"}
        view["extra"] = 7  # overlay write does not touch the shared field map
        assert view["extra"] == 7 and "extra" not in groups["proc"]
        assert len(view) == 2 and set(view) == {"exename", "extra"}


class TestPlanner:
    def test_plan_uses_indexes(self, database: RelationalDatabase):
        plan = database.plan(_join_query())
        kinds = {path.alias: path.kind for path in plan.access_paths.values()}
        assert kinds["e"] == "index-eq"

    def test_join_order_starts_with_most_selective(self, database: RelationalDatabase):
        plan = database.plan(_join_query())
        assert plan.join_order[0] in ("e", "s")

    def test_explain_lines(self, database: RelationalDatabase):
        lines = database.explain(_join_query())
        assert any("join order" in line for line in lines)

    def test_unknown_alias_rejected(self, database: RelationalDatabase):
        query = SelectQuery()
        with pytest.raises(QueryError):
            database.execute(query)

    def test_duplicate_alias_rejected(self):
        query = SelectQuery()
        query.add_table("events", "e")
        with pytest.raises(QueryError):
            query.add_table("entities", "e")

    def test_filter_on_undeclared_alias_rejected(self):
        query = SelectQuery()
        query.add_table("events", "e")
        with pytest.raises(QueryError):
            query.add_filter("x", Comparison(Column("id"), "=", Literal(1)))


class TestSQLGeneration:
    def test_render_contains_clauses(self, database: RelationalDatabase):
        sql = render_select(_join_query())
        assert sql.startswith("SELECT")
        assert "FROM events e, entities s, entities o" in sql
        assert "e.srcid = s.id" in sql
        assert "s.exename LIKE '%/bin/tar%'" in sql

    def test_render_single_line(self):
        sql = render_select(_join_query(), pretty=False)
        assert "\n" not in sql

    def test_count_query_lines(self):
        sql = render_select(_join_query())
        assert count_query_lines(sql) == len(sql.splitlines())

    def test_qualification_does_not_touch_string_literals(self):
        query = SelectQuery()
        query.add_table("entities", "s")
        query.add_filter("s", Comparison(Column("name"), "=", Literal("optype")))
        sql = render_select(query)
        assert "= 'optype'" in sql
        assert "s.name" in sql
