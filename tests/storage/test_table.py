"""Unit tests for the relational table."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.storage.relational.expression import Column, Comparison, Like, Literal
from repro.storage.relational.table import ColumnDefinition, Table, TableSchema

SCHEMA = TableSchema(
    name="files",
    columns=(
        ColumnDefinition("id", int, nullable=False),
        ColumnDefinition("name", str),
        ColumnDefinition("size", int),
    ),
)


@pytest.fixture
def table() -> Table:
    table = Table(SCHEMA)
    table.create_hash_index("name")
    table.create_sorted_index("size")
    table.insert_many(
        [
            {"id": 1, "name": "/etc/passwd", "size": 100},
            {"id": 2, "name": "/etc/shadow", "size": 50},
            {"id": 3, "name": "/tmp/upload.tar", "size": 900},
            {"id": 4, "name": "/etc/passwd", "size": 120},
        ]
    )
    return table


class TestSchemaValidation:
    def test_unknown_column_rejected(self, table: Table):
        with pytest.raises(SchemaError, match="unknown column"):
            table.insert({"id": 9, "owner": "root"})

    def test_missing_non_nullable_rejected(self, table: Table):
        with pytest.raises(SchemaError, match="missing value"):
            table.insert({"name": "/x"})

    def test_missing_nullable_becomes_none(self, table: Table):
        position = table.insert({"id": 10})
        assert table.row_at(position)["name"] is None

    def test_type_mismatch_rejected(self, table: Table):
        with pytest.raises(SchemaError, match="expects int"):
            table.insert({"id": "not-an-int", "name": "/x"})

    def test_index_on_unknown_column_rejected(self, table: Table):
        with pytest.raises(SchemaError):
            table.create_hash_index("nonexistent")


class TestAccessPaths:
    def test_full_scan(self, table: Table):
        assert len(list(table.scan())) == 4

    def test_filtered_scan(self, table: Table):
        predicate = Comparison(Column("size"), ">", Literal(90))
        names = {row["name"] for row in table.scan(predicate)}
        assert names == {"/etc/passwd", "/tmp/upload.tar"}

    def test_hash_lookup(self, table: Table):
        rows = list(table.lookup_equal("name", "/etc/passwd"))
        assert {row["id"] for row in rows} == {1, 4}

    def test_hash_lookup_with_residual(self, table: Table):
        residual = Comparison(Column("size"), ">", Literal(110))
        rows = list(table.lookup_equal("name", "/etc/passwd", residual=residual))
        assert [row["id"] for row in rows] == [4]

    def test_lookup_on_unindexed_column_falls_back_to_scan(self, table: Table):
        rows = list(table.lookup_equal("id", 3))
        assert len(rows) == 1 and rows[0]["name"] == "/tmp/upload.tar"

    def test_range_lookup(self, table: Table):
        rows = list(table.lookup_range("size", low=60, high=150))
        assert {row["id"] for row in rows} == {1, 4}

    def test_range_lookup_without_index(self, table: Table):
        rows = list(table.lookup_range("id", low=2, high=3))
        assert {row["id"] for row in rows} == {2, 3}

    def test_indexes_backfilled_on_creation(self):
        table = Table(SCHEMA)
        table.insert({"id": 1, "name": "/a", "size": 5})
        table.create_hash_index("name")
        assert [row["id"] for row in table.lookup_equal("name", "/a")] == [1]

    def test_like_residual_with_scan(self, table: Table):
        predicate = Like(Column("name"), "%/etc/%")
        assert len(list(table.scan(predicate))) == 3


class TestPositionalAccess:
    def test_column_array_aliases_storage(self, table: Table):
        names = table.column_array("name")
        assert list(names) == ["/etc/passwd", "/etc/shadow", "/tmp/upload.tar", "/etc/passwd"]
        table.insert({"id": 5, "name": "/new", "size": 1})
        assert names[-1] == "/new"  # live array grows in place

    def test_column_array_missing_column(self, table: Table):
        assert table.column_array("nonexistent") is None

    def test_positions_equal_uses_hash_index(self, table: Table):
        assert sorted(table.positions_equal("name", "/etc/passwd")) == [0, 3]

    def test_positions_equal_falls_back_to_scan(self, table: Table):
        assert list(table.positions_equal("id", 3)) == [2]

    def test_positions_range(self, table: Table):
        assert sorted(table.positions_range("size", 60, 150)) == [0, 3]

    def test_filter_positions_vectorized(self, table: Table):
        predicate = Comparison(Column("size"), ">", Literal(90))
        assert table.filter_positions(predicate) == [0, 2, 3]
        assert table.filter_positions(predicate, [2, 1]) == [2]

    def test_filter_positions_without_predicate(self, table: Table):
        assert table.filter_positions(None) == [0, 1, 2, 3]

    def test_rows_at_materializes_in_order(self, table: Table):
        rows = list(table.rows_at([3, 0]))
        assert [row["id"] for row in rows] == [4, 1]


class TestStatistics:
    def test_selectivity_uses_distinct_count(self, table: Table):
        selectivity = table.estimate_selectivity("name")
        assert selectivity == pytest.approx(1 / 3)

    def test_selectivity_unindexed_default(self, table: Table):
        assert table.estimate_selectivity("id") == 0.1

    def test_selectivity_empty_table(self):
        assert Table(SCHEMA).estimate_selectivity("name") == 0.0

    def test_statistics_summary(self, table: Table):
        stats = table.statistics()
        assert stats["rows"] == 4
        assert stats["hash_indexes"] == ["name"]
        assert stats["sorted_indexes"] == ["size"]
