"""Unit tests for graph path pattern matching."""

from __future__ import annotations

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.storage.graph.cypher import render_path_pattern
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.model import Edge, Node
from repro.storage.graph.pattern import EdgePattern, NodePattern, PathMatcher, PathPattern


@pytest.fixture
def chain_graph() -> GraphDatabase:
    """tar -> upload.tar -> (bzip2 reads) ... a chain through an intermediate process.

    Structure (subject --op--> object):
        tar   --read-->  passwd          (t=100)
        tar   --write--> upload.tar      (t=200)
        bzip2 --read-->  upload.tar      (t=300)
        bzip2 --write--> upload.tar.bz2  (t=400)
    """
    graph = GraphDatabase()
    entities = [
        ProcessEntity(entity_id=1, exename="/bin/tar", pid=1),
        ProcessEntity(entity_id=2, exename="/bin/bzip2", pid=2),
        FileEntity(entity_id=3, name="/etc/passwd"),
        FileEntity(entity_id=4, name="/tmp/upload.tar"),
        FileEntity(entity_id=5, name="/tmp/upload.tar.bz2"),
    ]
    events = [
        SystemEvent(1, 1, 3, Operation.READ, EntityType.FILE, 100, 110),
        SystemEvent(2, 1, 4, Operation.WRITE, EntityType.FILE, 200, 210),
        SystemEvent(3, 2, 4, Operation.READ, EntityType.FILE, 300, 310),
        SystemEvent(4, 2, 5, Operation.WRITE, EntityType.FILE, 400, 410),
    ]
    graph.load_trace(AuditTrace(entities=entities, events=events))
    return graph


class TestNodeEdgePatterns:
    def test_node_pattern_label_and_properties(self, chain_graph: GraphDatabase):
        pattern = NodePattern(label="process", properties={"exename": "/bin/tar"})
        assert pattern.matches(chain_graph.node(1))
        assert not pattern.matches(chain_graph.node(2))
        assert not pattern.matches(chain_graph.node(3))

    def test_node_pattern_predicate(self, chain_graph: GraphDatabase):
        pattern = NodePattern(predicate=lambda node: "tar" in str(node.get("name", "")))
        assert pattern.matches(chain_graph.node(4))
        assert not pattern.matches(chain_graph.node(3))

    def test_edge_pattern(self, chain_graph: GraphDatabase):
        pattern = EdgePattern(relationship="read", predicate=lambda edge: edge.start_time >= 300)
        assert pattern.matches(chain_graph.edge(3))
        assert not pattern.matches(chain_graph.edge(1))
        assert not pattern.matches(chain_graph.edge(4))

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            PathPattern(min_length=0, max_length=1)
        with pytest.raises(ValueError):
            PathPattern(min_length=3, max_length=2)


class TestSingleHopMatching:
    def test_exact_match(self, chain_graph: GraphDatabase):
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/tar"}),
            target=NodePattern(label="file", properties={"name": "/etc/passwd"}),
            final_edge=EdgePattern(relationship="read"),
        )
        paths = list(PathMatcher(chain_graph).match(pattern))
        assert len(paths) == 1
        assert paths[0].edge_ids() == (1,)

    def test_unconstrained_target(self, chain_graph: GraphDatabase):
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/bzip2"}),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(),
        )
        paths = list(PathMatcher(chain_graph).match(pattern))
        assert {path.edge_ids()[0] for path in paths} == {3, 4}

    def test_no_match(self, chain_graph: GraphDatabase):
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/nonexistent"}),
            target=NodePattern(label="file"),
        )
        assert list(PathMatcher(chain_graph).match(pattern)) == []


class TestVariableLengthMatching:
    def test_two_hop_path_through_intermediate_file(self, chain_graph: GraphDatabase):
        # tar ~>(1~3)[read] upload.tar: path tar -write-> upload.tar is length 1
        # but the final hop must be a read; the 1-hop write does not qualify,
        # and there is no longer path ending in a read at upload.tar from tar
        # (upload.tar has no outgoing edges), so only paths via intermediate
        # nodes could match — none exist here.
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/tar"}),
            target=NodePattern(label="file", properties={"name": "/tmp/upload.tar"}),
            final_edge=EdgePattern(relationship="read"),
            min_length=1,
            max_length=3,
        )
        assert list(PathMatcher(chain_graph).match(pattern)) == []

    def test_multi_hop_reaches_distant_file(self, chain_graph: GraphDatabase):
        # There is no process->process edge in this graph, so reaching
        # upload.tar.bz2 from tar requires following file nodes; file nodes
        # have no outgoing edges either, hence only bzip2 can write it.
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/bzip2"}),
            target=NodePattern(label="file", properties={"name": "/tmp/upload.tar.bz2"}),
            final_edge=EdgePattern(relationship="write"),
            min_length=1,
            max_length=4,
        )
        paths = list(PathMatcher(chain_graph).match(pattern))
        assert len(paths) == 1

    def test_multi_hop_with_forked_process_chain(self):
        """A fork chain: bash forks tar, tar writes the archive.

        ``proc bash ~>(2~3)[write] file archive`` must find the 2-hop path
        even though bash never writes the archive directly.
        """
        graph = GraphDatabase()
        entities = [
            ProcessEntity(entity_id=1, exename="/bin/bash", pid=1),
            ProcessEntity(entity_id=2, exename="/bin/tar", pid=2),
            FileEntity(entity_id=3, name="/tmp/upload.tar"),
        ]
        events = [
            SystemEvent(1, 1, 2, Operation.FORK, EntityType.PROCESS, 100, 110),
            SystemEvent(2, 2, 3, Operation.WRITE, EntityType.FILE, 200, 210),
        ]
        graph.load_trace(AuditTrace(entities=entities, events=events))
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/bash"}),
            target=NodePattern(label="file", properties={"name": "/tmp/upload.tar"}),
            final_edge=EdgePattern(relationship="write"),
            min_length=2,
            max_length=3,
        )
        paths = list(PathMatcher(graph).match(pattern))
        assert len(paths) == 1
        assert paths[0].length == 2
        assert paths[0].edge_ids() == (1, 2)

    def test_temporal_order_enforced(self):
        """A path whose second hop starts before the first is rejected."""
        graph = GraphDatabase()
        entities = [
            ProcessEntity(entity_id=1, exename="/bin/bash", pid=1),
            ProcessEntity(entity_id=2, exename="/bin/tar", pid=2),
            FileEntity(entity_id=3, name="/tmp/upload.tar"),
        ]
        events = [
            SystemEvent(1, 1, 2, Operation.FORK, EntityType.PROCESS, 500, 510),
            SystemEvent(2, 2, 3, Operation.WRITE, EntityType.FILE, 200, 210),
        ]
        graph.load_trace(AuditTrace(entities=entities, events=events))
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/bash"}),
            target=NodePattern(label="file", properties={"name": "/tmp/upload.tar"}),
            final_edge=EdgePattern(relationship="write"),
            min_length=2,
            max_length=2,
        )
        assert list(PathMatcher(graph).match(pattern)) == []
        relaxed = PathPattern(
            source=pattern.source,
            target=pattern.target,
            final_edge=pattern.final_edge,
            min_length=2,
            max_length=2,
            enforce_temporal_order=False,
        )
        assert len(list(PathMatcher(graph).match(relaxed))) == 1

    def test_min_length_respected(self, chain_graph: GraphDatabase):
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/tar"}),
            target=NodePattern(label="file", properties={"name": "/etc/passwd"}),
            final_edge=EdgePattern(relationship="read"),
            min_length=2,
            max_length=3,
        )
        # The only tar->passwd path is the direct read (length 1) < min_length.
        assert list(PathMatcher(chain_graph).match(pattern)) == []


class TestUnconstrainedSourceLabels:
    def test_unconstrained_source_covers_every_label(self):
        """Regression: sources were drawn from a hard-coded label whitelist
        ("process", "file", "network"), silently skipping any other label."""
        graph = GraphDatabase()
        graph.add_node(Node(node_id=1, label="container", properties={"name": "sandbox-1"}))
        graph.add_node(Node(node_id=2, label="file", properties={"name": "/tmp/out"}))
        graph.add_edge(
            Edge(
                edge_id=1, source_id=1, target_id=2, relationship="write",
                properties={"starttime": 100, "endtime": 110},
            )
        )
        pattern = PathPattern(
            source=NodePattern(),  # no label, no properties: fully unconstrained
            target=NodePattern(label="file"),
            final_edge=EdgePattern(relationship="write"),
        )
        paths = list(PathMatcher(graph).match(pattern))
        assert [path.start.label for path in paths] == ["container"]


class TestSingleEdgeFastPath:
    def test_match_single_edges_agrees_with_general_search(self, chain_graph: GraphDatabase):
        """Regression: the 1-hop fast path was a line-for-line copy of
        ``_single_hop`` (and skipped the source predicate check); it now
        delegates, so the two cannot drift."""
        pattern = PathPattern(
            source=NodePattern(
                label="process",
                predicate=lambda node: "tar" in str(node.get("exename", "")),
            ),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(),
        )
        matcher = PathMatcher(chain_graph)
        fast = {path.edge_ids() for path in matcher.match_single_edges(pattern)}
        general = {path.edge_ids() for path in matcher.match(pattern)}
        assert fast == general
        assert fast == {(1,), (2,)}


class TestDeclarativeConstraints:
    def test_allowed_ids_restricts_sources(self, chain_graph: GraphDatabase):
        pattern = PathPattern(
            source=NodePattern(label="process", allowed_ids=frozenset({2})),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(),
        )
        paths = list(PathMatcher(chain_graph).match(pattern))
        assert {path.start.node_id for path in paths} == {2}

    def test_edge_window_bounds_start_time(self, chain_graph: GraphDatabase):
        pattern = PathPattern(
            source=NodePattern(label="process"),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(window=(150, 350)),
        )
        paths = list(PathMatcher(chain_graph).match(pattern))
        assert {path.edge_ids()[0] for path in paths} == {2, 3}


class TestCypherRendering:
    def test_single_hop_rendering(self):
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/tar"}),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(relationship="read"),
        )
        cypher = render_path_pattern(pattern)
        assert "MATCH" in cypher and "RETURN" in cypher
        assert ":Process" in cypher and ":READ" in cypher

    def test_variable_length_rendering(self):
        pattern = PathPattern(
            source=NodePattern(label="process"),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(relationship="read"),
            min_length=2,
            max_length=4,
        )
        cypher = render_path_pattern(pattern)
        assert "*1..3" in cypher  # intermediate segment is min-1 .. max-1
