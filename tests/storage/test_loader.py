"""Unit tests for the combined audit store loader."""

from __future__ import annotations

from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import NoisyFileServerWorkload, WebServerWorkload
from repro.storage.loader import AuditStore


def _bursty_trace():
    builder = ScenarioBuilder(seed=7)
    NoisyFileServerWorkload(sessions=3, operations_per_session=40).generate(builder)
    WebServerWorkload(requests=10).generate(builder)
    return builder.build()


class TestAuditStore:
    def test_load_into_both_backends(self):
        trace = _bursty_trace()
        store = AuditStore(apply_reduction=False)
        report = store.load_trace(trace)
        assert report.relational_rows["events"] == len(trace.events)
        assert report.graph_counts["edges"] == len(trace.events)
        assert report.reduction is None
        assert store.loaded_trace is trace

    def test_reduction_applied_by_default(self):
        trace = _bursty_trace()
        store = AuditStore()
        report = store.load_trace(trace)
        assert report.reduction is not None
        assert report.reduction.events_before == len(trace.events)
        assert report.relational_rows["events"] == report.reduction.events_after
        assert report.graph_counts["edges"] == report.reduction.events_after
        assert report.reduction.reduction_factor > 1.0

    def test_backends_consistent_after_load(self):
        trace = _bursty_trace()
        store = AuditStore()
        store.load_trace(trace)
        relational_events = len(store.relational.table("events"))
        graph_edges = store.graph.edge_count()
        assert relational_events == graph_edges
        relational_entities = len(store.relational.table("entities"))
        assert relational_entities == store.graph.node_count()

    def test_statistics_structure(self):
        store = AuditStore()
        store.load_trace(_bursty_trace())
        stats = store.statistics()
        assert "relational" in stats and "graph" in stats
        assert stats["graph"]["nodes"] == stats["relational"]["entities"]["rows"]

    def test_empty_store(self):
        store = AuditStore()
        assert store.loaded_trace is None
        stats = store.statistics()
        assert stats["graph"]["nodes"] == 0


class TestRepeatedLoads:
    """Regression tests: repeated load_trace calls are well-defined."""

    def test_double_load_replaces_not_overlays(self):
        first = _bursty_trace()
        builder = ScenarioBuilder(seed=99)
        WebServerWorkload(requests=5).generate(builder)
        second = builder.build()

        store = AuditStore(apply_reduction=False)
        store.load_trace(first)
        report = store.load_trace(second)
        # Exactly the second trace is stored — no half-overwritten mixture.
        assert report.relational_rows["events"] == len(second.events)
        assert len(store.relational.table("events")) == len(second.events)
        assert store.graph.edge_count() == len(second.events)
        assert len(store.relational.table("entities")) == len(second.entities)
        assert store.graph.node_count() == len(second.entities)
        assert store.loaded_trace is second

    def test_double_load_same_trace_is_idempotent(self):
        trace = _bursty_trace()
        store = AuditStore()
        store.load_trace(trace)
        first_stats = store.statistics()
        store.load_trace(trace)
        assert store.statistics() == first_stats

    @staticmethod
    def _halves():
        """One trace split in two halves sharing the entity/event id space."""
        from repro.auditing.trace import AuditTrace

        whole = _bursty_trace()
        midpoint = len(whole.events) // 2
        first = AuditTrace(host=whole.host, entities=list(whole.entities))
        first.add_events(whole.events[:midpoint])
        second = AuditTrace(host=whole.host, entities=list(whole.entities))
        second.add_events(whole.events[midpoint:])
        return whole, first, second

    def test_append_adds_to_existing_data(self):
        whole, first, second = self._halves()
        store = AuditStore(apply_reduction=False)
        store.load_trace(first)
        store.load_trace(second, append=True)
        assert len(store.relational.table("events")) == len(whole.events)
        assert store.graph.edge_count() == len(whole.events)
        assert len(store.relational.table("entities")) == len(whole.entities)
        assert store.graph.node_count() == len(whole.entities)

    def test_append_does_not_mutate_caller_trace(self):
        _, first, second = self._halves()
        store = AuditStore(apply_reduction=False)
        store.load_trace(first)
        events_before = len(first.events)
        store.load_trace(second, append=True)
        assert len(first.events) == events_before
        assert store.loaded_trace is not first

    def test_reset_empties_both_backends(self):
        store = AuditStore()
        store.load_trace(_bursty_trace())
        store.reset()
        assert store.loaded_trace is None
        assert len(store.relational.table("events")) == 0
        assert store.graph.node_count() == 0
