"""Unit tests for the combined audit store loader."""

from __future__ import annotations

from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import NoisyFileServerWorkload, WebServerWorkload
from repro.storage.loader import AuditStore


def _bursty_trace():
    builder = ScenarioBuilder(seed=7)
    NoisyFileServerWorkload(sessions=3, operations_per_session=40).generate(builder)
    WebServerWorkload(requests=10).generate(builder)
    return builder.build()


class TestAuditStore:
    def test_load_into_both_backends(self):
        trace = _bursty_trace()
        store = AuditStore(apply_reduction=False)
        report = store.load_trace(trace)
        assert report.relational_rows["events"] == len(trace.events)
        assert report.graph_counts["edges"] == len(trace.events)
        assert report.reduction is None
        assert store.loaded_trace is trace

    def test_reduction_applied_by_default(self):
        trace = _bursty_trace()
        store = AuditStore()
        report = store.load_trace(trace)
        assert report.reduction is not None
        assert report.reduction.events_before == len(trace.events)
        assert report.relational_rows["events"] == report.reduction.events_after
        assert report.graph_counts["edges"] == report.reduction.events_after
        assert report.reduction.reduction_factor > 1.0

    def test_backends_consistent_after_load(self):
        trace = _bursty_trace()
        store = AuditStore()
        store.load_trace(trace)
        relational_events = len(store.relational.table("events"))
        graph_edges = store.graph.edge_count()
        assert relational_events == graph_edges
        relational_entities = len(store.relational.table("entities"))
        assert relational_entities == store.graph.node_count()

    def test_statistics_structure(self):
        store = AuditStore()
        store.load_trace(_bursty_trace())
        stats = store.statistics()
        assert "relational" in stats and "graph" in stats
        assert stats["graph"]["nodes"] == stats["relational"]["entities"]["rows"]

    def test_empty_store(self):
        store = AuditStore()
        assert store.loaded_trace is None
        stats = store.statistics()
        assert stats["graph"]["nodes"] == 0
