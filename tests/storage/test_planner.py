"""Unit tests for the cost-guided path planner and the time-sorted graph indexes."""

from __future__ import annotations

import pytest

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.pattern import EdgePattern, NodePattern, PathMatcher, PathPattern
from repro.storage.graph.planner import CostGuidedPathMatcher


def _chain_store(chains: int = 8, noise_files_per_helper: int = 10) -> GraphDatabase:
    """bash -> fork -> helper -> write staging archive, plus noisy helper reads."""
    graph = GraphDatabase()
    entities = []
    events = []
    event_id = 1
    next_id = 1
    for index in range(chains):
        bash = next_id
        helper = next_id + 1
        staged = next_id + 2
        next_id += 3
        entities.append(ProcessEntity(entity_id=bash, exename="/bin/bash", pid=bash))
        entities.append(ProcessEntity(entity_id=helper, exename="/usr/bin/python3", pid=helper))
        entities.append(FileEntity(entity_id=staged, name=f"/tmp/staging/a{index}.tar"))
        base = index * 100
        events.append(
            SystemEvent(event_id, bash, helper, Operation.FORK, EntityType.PROCESS, base, base + 1)
        )
        event_id += 1
        for noise in range(noise_files_per_helper):
            noise_file = next_id
            next_id += 1
            entities.append(FileEntity(entity_id=noise_file, name=f"/var/noise/{index}-{noise}"))
            events.append(
                SystemEvent(
                    event_id, helper, noise_file, Operation.READ, EntityType.FILE,
                    base + 2 + noise, base + 3 + noise,
                )
            )
            event_id += 1
        events.append(
            SystemEvent(
                event_id, helper, staged, Operation.WRITE, EntityType.FILE,
                base + 50, base + 51,
            )
        )
        event_id += 1
    graph.load_trace(AuditTrace(entities=entities, events=events))
    return graph


@pytest.fixture
def chain_graph() -> GraphDatabase:
    return _chain_store()


def _paths(matcher, pattern):
    return {(path.node_ids(), path.edge_ids()) for path in matcher.match(pattern)}


class TestStrategySelection:
    def test_backward_when_target_is_selective(self, chain_graph):
        pattern = PathPattern(
            source=NodePattern(label="process"),
            target=NodePattern(label="file", properties={"name": "/tmp/staging/a0.tar"}),
            final_edge=EdgePattern(relationship="write"),
            min_length=1,
            max_length=2,
        )
        matcher = CostGuidedPathMatcher(chain_graph)
        result = _paths(matcher, pattern)
        assert matcher.last_plan.strategy == "backward"
        assert result == _paths(PathMatcher(chain_graph), pattern)

    def test_forward_when_source_is_selective(self, chain_graph):
        pattern = PathPattern(
            # One specific bash process; targets are the whole file bucket.
            source=NodePattern(label="process", allowed_ids=frozenset({1})),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(relationship="write"),
            min_length=1,
            max_length=2,
        )
        matcher = CostGuidedPathMatcher(chain_graph)
        result = _paths(matcher, pattern)
        assert matcher.last_plan.strategy == "forward"
        assert result == _paths(PathMatcher(chain_graph), pattern)
        assert result  # the 2-hop bash -> helper -> staging path exists

    def test_window_seeded_when_final_edge_is_windowed(self, chain_graph):
        pattern = PathPattern(
            source=NodePattern(label="process"),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(relationship="write", window=(700, 800)),
            min_length=1,
            max_length=3,
        )
        matcher = CostGuidedPathMatcher(chain_graph)
        result = _paths(matcher, pattern)
        plan = matcher.last_plan
        assert plan.strategy == "window-seeded"
        # Only the last chain's write (start 750) lies in the window.
        assert plan.window_edges == 1
        assert result == _paths(PathMatcher(chain_graph), pattern)

    def test_empty_plan_short_circuits(self, chain_graph):
        pattern = PathPattern(
            source=NodePattern(label="process", properties={"exename": "/bin/nonexistent"}),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(relationship="write"),
        )
        matcher = CostGuidedPathMatcher(chain_graph)
        assert _paths(matcher, pattern) == set()
        assert matcher.last_plan.strategy == "empty"

    def test_meet_in_middle_on_dense_expansion(self):
        """A dense process mesh makes the DFS estimate exceed one edge sweep."""
        graph = GraphDatabase()
        processes = [
            ProcessEntity(entity_id=index, exename="/bin/worker", pid=index)
            for index in range(1, 13)
        ]
        target_file = FileEntity(entity_id=99, name="/tmp/out")
        events = []
        event_id = 1
        for src in range(1, 13):
            for dst in range(1, 13):
                if src != dst:
                    events.append(
                        SystemEvent(
                            event_id, src, dst, Operation.FORK, EntityType.PROCESS,
                            event_id, event_id + 1,
                        )
                    )
                    event_id += 1
        events.append(
            SystemEvent(event_id, 12, 99, Operation.WRITE, EntityType.FILE, 10_000, 10_001)
        )
        graph.load_trace(AuditTrace(entities=processes + [target_file], events=events))
        pattern = PathPattern(
            # Selective source keeps the search forward; the mesh's branching
            # factor still makes the DFS estimate exceed one edge sweep, so the
            # reachability map is built.
            source=NodePattern(label="process", allowed_ids=frozenset({1})),
            target=NodePattern(label="process"),
            final_edge=EdgePattern(relationship="fork"),
            min_length=1,
            max_length=4,
        )
        matcher = CostGuidedPathMatcher(graph)
        result = _paths(matcher, pattern)
        plan = matcher.last_plan
        assert plan.strategy == "forward" and plan.uses_reachability
        assert result == _paths(PathMatcher(graph), pattern)


class TestSelfLoopSemantics:
    """subject == object events: matched at 1 hop (SQL semantics), excluded
    from variable-length paths (simple-path semantics) — on every strategy,
    exactly like the DFS oracle."""

    @pytest.fixture
    def loop_graph(self) -> GraphDatabase:
        """One process with a self-loop fork plus five file reads (the reads
        inflate the forward fanout so each strategy is genuinely reachable)."""
        graph = GraphDatabase()
        entities = [ProcessEntity(entity_id=1, exename="/bin/x", pid=1)]
        entities += [FileEntity(entity_id=10 + i, name=f"/tmp/f{i}") for i in range(5)]
        events = [SystemEvent(10, 1, 1, Operation.FORK, EntityType.PROCESS, 100, 101)]
        events += [
            SystemEvent(20 + i, 1, 10 + i, Operation.READ, EntityType.FILE, 200 + i, 201 + i)
            for i in range(5)
        ]
        graph.load_trace(AuditTrace(entities=entities, events=events))
        return graph

    def _pattern(self, max_length: int, **overrides) -> PathPattern:
        settings = dict(
            source=NodePattern(label="process"),
            target=NodePattern(label="process"),
            final_edge=EdgePattern(relationship="fork"),
            min_length=1,
            max_length=max_length,
        )
        settings.update(overrides)
        return PathPattern(**settings)

    @pytest.mark.parametrize("max_length", [1, 2])
    def test_every_strategy_agrees_with_oracle(self, loop_graph, max_length):
        shapes = {
            # Unlabelled target: its estimate covers every node, so the
            # forward fanout never exceeds it and the search stays forward.
            "forward": {"target": NodePattern()},
            # Process-labelled target (one candidate) vs. six outgoing edges:
            # the final-hop-first backward strategy wins.
            "backward": {},
            "window-seeded": {
                "final_edge": EdgePattern(relationship="fork", window=(100, 100)),
            },
        }
        for name, overrides in shapes.items():
            pattern = self._pattern(max_length, **overrides)
            oracle = _paths(PathMatcher(loop_graph), pattern)
            matcher = CostGuidedPathMatcher(loop_graph)
            assert _paths(matcher, pattern) == oracle, (name, matcher.last_plan)
            assert matcher.last_plan.strategy == name
            expected = {((1, 1), (10,))} if max_length == 1 else set()
            assert oracle == expected, name


class TestTimeSortedIndexes:
    def test_adjacency_is_time_sorted_even_for_out_of_order_loads(self):
        graph = GraphDatabase()
        graph.load_trace(
            AuditTrace(
                entities=[
                    ProcessEntity(entity_id=1, exename="/bin/x", pid=1),
                    FileEntity(entity_id=2, name="/tmp/a"),
                ],
                events=[
                    SystemEvent(1, 1, 2, Operation.WRITE, EntityType.FILE, 300, 301),
                    SystemEvent(2, 1, 2, Operation.WRITE, EntityType.FILE, 100, 101),
                    SystemEvent(3, 1, 2, Operation.WRITE, EntityType.FILE, 200, 201),
                ],
            )
        )
        starts = [edge.start_time for edge in graph.outgoing_edges(1)]
        assert starts == sorted(starts)
        assert [edge.edge_id for edge in graph.outgoing_edges(1, min_start=150)] == [3, 1]
        assert [edge.edge_id for edge in graph.incoming_edges(2, max_start=250)] == [2, 3]

    def test_global_time_index_and_counts(self, chain_graph):
        writes = list(chain_graph.edges_started_between(0, 99, relationship="write"))
        assert [edge.edge_id for edge in writes] == [12]
        assert chain_graph.count_edges_started_between(0, 99, relationship="write") == 1
        assert chain_graph.count_edges_started_between(None, None) == chain_graph.edge_count()

    def test_degrees_and_labels(self, chain_graph):
        assert chain_graph.out_degree(2) == 11  # helper: 10 noise reads + 1 write
        assert chain_graph.out_degree(2, "write") == 1
        assert chain_graph.in_degree(3, "write") == 1
        assert set(chain_graph.labels()) == {"process", "file"}
        assert chain_graph.label_count("process") == 16

    def test_huge_hop_bounds_plan_without_overflow(self, chain_graph):
        """Regression: the DFS-expansion estimate is compared in log space —
        a parser-valid bound like ~>(2~1200) must not overflow a float power."""
        pattern = PathPattern(
            source=NodePattern(label="process"),
            target=NodePattern(label="file"),
            final_edge=EdgePattern(relationship="write"),
            min_length=2,
            max_length=1200,
        )
        matcher = CostGuidedPathMatcher(chain_graph)
        result = _paths(matcher, pattern)
        assert matcher.last_plan is not None
        assert result == _paths(PathMatcher(chain_graph), pattern)
