"""Unit tests for the relational secondary indexes."""

from __future__ import annotations

from repro.storage.relational.index import HashIndex, SortedIndex


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex("name")
        index.insert("a", 0)
        index.insert("b", 1)
        index.insert("a", 2)
        assert index.lookup("a") == [0, 2]
        assert index.lookup("b") == [1]
        assert index.lookup("missing") == []

    def test_lookup_many_deduplicates_and_sorts(self):
        index = HashIndex("name")
        index.insert("a", 3)
        index.insert("b", 1)
        index.insert("a", 2)
        assert index.lookup_many(["a", "b", "a"]) == [1, 2, 3]

    def test_len_and_distinct(self):
        index = HashIndex("name")
        index.insert("a", 0)
        index.insert("a", 1)
        index.insert("b", 2)
        assert len(index) == 3
        assert index.distinct_values() == 2

    def test_none_values_are_indexable(self):
        index = HashIndex("name")
        index.insert(None, 0)
        assert index.lookup(None) == [0]

    def test_lookup_returns_a_copy_not_internal_state(self):
        index = HashIndex("name")
        index.insert("a", 0)
        bucket = index.lookup("a")
        bucket.append(99)
        bucket.clear()
        assert index.lookup("a") == [0]
        assert len(index) == 1

    def test_lookup_miss_returns_fresh_list(self):
        index = HashIndex("name")
        missing = index.lookup("nope")
        missing.append(7)
        assert index.lookup("nope") == []
        assert len(index) == 0

    def test_len_tracks_inserts_incrementally(self):
        index = HashIndex("name")
        for position in range(50):
            index.insert(f"v{position % 5}", position)
            assert len(index) == position + 1


class TestSortedIndex:
    def test_range_inclusive(self):
        index = SortedIndex("t")
        for position, value in enumerate([50, 10, 30, 20, 40]):
            index.insert(value, position)
        assert sorted(index.range(20, 40)) == [2, 3, 4]

    def test_open_ended_ranges(self):
        index = SortedIndex("t")
        for position, value in enumerate([1, 2, 3]):
            index.insert(value, position)
        assert list(index.range(None, 2)) == [0, 1]
        assert list(index.range(2, None)) == [1, 2]
        assert list(index.range()) == [0, 1, 2]

    def test_lookup_exact(self):
        index = SortedIndex("t")
        index.insert(5, 0)
        index.insert(5, 1)
        index.insert(6, 2)
        assert index.lookup(5) == [0, 1]

    def test_none_values_skipped(self):
        index = SortedIndex("t")
        index.insert(None, 0)
        index.insert(1, 1)
        assert len(index) == 1

    def test_min_max(self):
        index = SortedIndex("t")
        assert index.min_value() is None
        index.insert(7, 0)
        index.insert(3, 1)
        assert index.min_value() == 3
        assert index.max_value() == 7

    def test_duplicate_values_all_returned(self):
        index = SortedIndex("t")
        for position in range(5):
            index.insert(9, position)
        assert sorted(index.range(9, 9)) == [0, 1, 2, 3, 4]
