"""Tests for the sqlite3-backed SQL execution backend (``backend="sql"``)."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType, FileEntity, ProcessEntity
from repro.auditing.events import Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.errors import ConfigurationError, QueryError, StorageError
from repro.storage.loader import AuditStore
from repro.storage.relational.database import RelationalDatabase
from repro.storage.relational.expression import (
    Column,
    Comparison,
    InList,
    Like,
    Literal,
    escape_like,
)
from repro.storage.relational.query import SelectQuery
from repro.storage.sql.database import SqliteRelationalDatabase
from repro.storage.sql.render import render_select_query
from repro.tbql.executor import TBQLExecutionEngine


def _trace() -> AuditTrace:
    entities = [
        ProcessEntity(entity_id=1, exename="/bin/tar", pid=10),
        ProcessEntity(entity_id=2, exename="/usr/bin/curl", pid=11),
        FileEntity(entity_id=3, name="/etc/passwd"),
        FileEntity(entity_id=4, name="/tmp/a%20b.tar"),
    ]
    events = [
        SystemEvent(1, 1, 3, Operation.READ, EntityType.FILE, 100, 110, 10),
        SystemEvent(2, 1, 4, Operation.WRITE, EntityType.FILE, 200, 210, 10),
        SystemEvent(3, 2, 4, Operation.READ, EntityType.FILE, 300, 310, 10),
    ]
    return AuditTrace(entities=entities, events=events)


def _join_query(exename_pattern: str = "%/bin/tar%") -> SelectQuery:
    query = SelectQuery()
    query.add_table("events", "e")
    query.add_table("entities", "s")
    query.add_table("entities", "o")
    query.add_join("e", "srcid", "s", "id")
    query.add_join("e", "dstid", "o", "id")
    query.add_filter("e", Comparison(Column("optype"), "=", Literal("read")))
    query.add_filter("s", Like(Column("exename"), exename_pattern))
    query.add_output("e", "id", "event.id")
    query.add_output("s", "exename", "subject.exename")
    query.add_output("o", "name", "object.name")
    return query


@pytest.fixture
def sqlite_db() -> SqliteRelationalDatabase:
    database = SqliteRelationalDatabase()
    database.load_trace(_trace())
    return database


@pytest.fixture
def memory_db() -> RelationalDatabase:
    database = RelationalDatabase()
    database.load_trace(_trace())
    return database


class TestSqliteRelationalDatabase:
    def test_load_counts(self, sqlite_db: SqliteRelationalDatabase):
        assert len(sqlite_db) == 7
        stats = sqlite_db.statistics()
        assert stats["entities"]["rows"] == 4
        assert stats["events"]["rows"] == 3
        assert "id" in stats["events"]["hash_indexes"]

    def test_execute_matches_memory_engine(
        self, sqlite_db: SqliteRelationalDatabase, memory_db: RelationalDatabase
    ):
        query = _join_query()
        sql_result = sqlite_db.execute(query)
        memory_result = memory_db.execute(query)
        assert sql_result.columns == memory_result.columns
        assert set(sql_result.rows) == set(memory_result.rows)
        assert len(sql_result.rows) == 1
        assert sql_result.rows[0][2] == "/etc/passwd"

    def test_projection_names_survive_dots(self, sqlite_db: SqliteRelationalDatabase):
        result = sqlite_db.execute(_join_query())
        assert result.columns == ("event.id", "subject.exename", "object.name")
        groups = result.column_groups()
        assert set(groups) == {"event", "subject", "object"}

    def test_escaped_like_matches_literal_percent(
        self, sqlite_db: SqliteRelationalDatabase, memory_db: RelationalDatabase
    ):
        query = SelectQuery()
        query.add_table("entities", "o")
        query.add_filter(
            "o", Like(Column("name"), "%" + escape_like("a%20b") + "%")
        )
        query.add_output("o", "id", "object.id")
        sql_rows = set(sqlite_db.execute(query).rows)
        assert sql_rows == set(memory_db.execute(query).rows)
        assert sql_rows == {(4,)}

    def test_empty_in_list_executes(self, sqlite_db: SqliteRelationalDatabase):
        query = SelectQuery()
        query.add_table("entities", "o")
        query.add_filter("o", InList(Column("type"), ()))
        query.add_output("o", "id", "object.id")
        assert sqlite_db.execute(query).rows == ()
        negated = SelectQuery()
        negated.add_table("entities", "o")
        negated.add_filter("o", InList(Column("type"), (), negate=True))
        negated.add_output("o", "id", "object.id")
        assert len(sqlite_db.execute(negated).rows) == 4

    def test_empty_projection_expands_all_columns(
        self, sqlite_db: SqliteRelationalDatabase, memory_db: RelationalDatabase
    ):
        query = SelectQuery()
        query.add_table("events", "e")
        sql_result = sqlite_db.execute(query)
        memory_result = memory_db.execute(query)
        assert sql_result.columns == memory_result.columns
        assert set(sql_result.rows) == set(memory_result.rows)

    def test_append_batch_dedupes_entities(self, sqlite_db: SqliteRelationalDatabase):
        trace = _trace()
        counts = sqlite_db.append_batch(trace.entities, trace.events[:1])
        assert counts == {"entities": 0, "events": 1}
        assert sqlite_db.has_entity(1)
        assert not sqlite_db.has_entity(99)

    def test_clear_rebuilds_schema(self, sqlite_db: SqliteRelationalDatabase):
        sqlite_db.clear()
        assert len(sqlite_db) == 0
        assert sqlite_db.load_trace(_trace()) == {"entities": 4, "events": 3}

    def test_table_access_is_rejected(self, sqlite_db: SqliteRelationalDatabase):
        with pytest.raises(QueryError):
            sqlite_db.table("events")

    def test_explain_includes_sql_and_plan(self, sqlite_db: SqliteRelationalDatabase):
        lines = sqlite_db.explain(_join_query())
        assert any(line.startswith("SELECT") for line in lines)
        assert any(line.startswith("sqlite:") for line in lines)

    def test_parameterized_rendering_binds_literals(self):
        rendered = render_select_query(_join_query())
        assert "?" in rendered.text
        assert "read" in rendered.parameters
        assert "read" not in rendered.text


class TestAuditStorePlumbing:
    def test_store_accepts_sql_executor(self):
        store = AuditStore(relational_executor="sql")
        assert isinstance(store.relational, SqliteRelationalDatabase)
        store.load_trace(_trace())
        assert store.statistics()["relational"]["events"]["rows"] == 3

    def test_sql_executor_rejected_with_segments(self, tmp_path):
        with pytest.raises(StorageError):
            AuditStore(
                relational_executor="sql", storage="segments", data_dir=str(tmp_path)
            )

    def test_engine_accepts_sql_backend(self):
        store = AuditStore(relational_executor="sql")
        store.load_trace(_trace())
        engine = TBQLExecutionEngine(store, backend="sql")
        assert engine is not None


class TestPipelinePlumbing:
    def test_config_accepts_sql_backend(self):
        config = ThreatRaptorConfig(execution_backend="sql").validate()
        assert config.execution_backend == "sql"

    def test_config_rejects_sql_with_segments(self):
        with pytest.raises(ConfigurationError):
            ThreatRaptorConfig(execution_backend="sql", storage="segments").validate()

    def test_pipeline_swaps_relational_engine(self):
        raptor = ThreatRaptor(ThreatRaptorConfig(execution_backend="sql"))
        assert isinstance(raptor.store.relational, SqliteRelationalDatabase)

    def test_hunt_matches_relational_backend(
        self, figure2_simulation, figure2_report_text
    ):
        matches = {}
        for backend in ("relational", "sql"):
            raptor = ThreatRaptor(ThreatRaptorConfig(execution_backend=backend))
            raptor.load_trace(figure2_simulation.trace)
            report = raptor.hunt(figure2_report_text)
            matches[backend] = set(report.result.all_matched_event_ids())
        assert matches["sql"] == matches["relational"]
        assert matches["sql"]

    def test_prepared_standing_hunt_runs_on_sql(
        self, figure2_simulation, figure2_report_text
    ):
        raptor = ThreatRaptor(ThreatRaptorConfig(execution_backend="sql"))
        raptor.load_trace(figure2_simulation.trace)
        report = raptor.hunt(figure2_report_text)
        prepared = raptor.prepare_query(report.query)
        assert set(prepared.execute().all_matched_event_ids()) == set(
            report.result.all_matched_event_ids()
        )


class TestNumericCoercionRegression:
    """String literals against int columns must compare numerically.

    Pre-fix, the in-memory engine compared ``pid > "9"`` lexicographically
    (so pid=10 did not match) while sqlite's column affinity made the same
    filter numeric — a silent cross-backend divergence.
    """

    def _pid_query(self, value) -> SelectQuery:
        query = SelectQuery()
        query.add_table("entities", "s")
        query.add_filter("s", Comparison(Column("pid"), ">", Literal(value)))
        query.add_output("s", "id", "subject.id")
        return query

    def test_typed_literal_comparison_agrees(
        self, sqlite_db: SqliteRelationalDatabase, memory_db: RelationalDatabase
    ):
        query = self._pid_query(9)
        assert set(sqlite_db.execute(query).rows) == set(memory_db.execute(query).rows)
        assert set(sqlite_db.execute(query).rows) == {(1,), (2,)}

    def test_compiler_emits_typed_literals_for_numeric_columns(self):
        from repro.auditing.entities import EntityType as ET
        from repro.tbql.ast import AttributeComparison, FilterOperator
        from repro.tbql.filters import comparison_to_expression

        expression = comparison_to_expression(
            AttributeComparison(
                attribute="pid", operator=FilterOperator.GT, value="9"
            ),
            ET.PROCESS,
        )
        assert isinstance(expression, Comparison)
        assert expression.right == Literal(9)
        # pid=10 now matches "> 9" numerically on the in-memory engine too.
        assert expression.evaluate({"pid": 10})

    def test_non_numeric_strings_stay_strings(self):
        from repro.auditing.entities import EntityType as ET
        from repro.tbql.ast import AttributeComparison, FilterOperator
        from repro.tbql.filters import comparison_to_expression

        expression = comparison_to_expression(
            AttributeComparison(
                attribute="owner", operator=FilterOperator.EQ, value="root"
            ),
            ET.PROCESS,
        )
        assert isinstance(expression, Comparison)
        assert expression.right == Literal("root")
