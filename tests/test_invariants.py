"""The repo-invariant AST lint: clean on the tree, sharp on violations."""

from __future__ import annotations

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_invariants.py"


@pytest.fixture(scope="module")
def invariants():
    spec = importlib.util.spec_from_file_location("check_invariants", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _check(invariants, checker_name: str, source: str):
    checker = getattr(invariants, checker_name)
    return checker(Path("synthetic.py"), ast.parse(source))


def _check_tree(invariants, checker_name: str, path: Path, tree: ast.Module):
    return getattr(invariants, checker_name)(path, tree)


class TestRepoIsClean:
    def test_script_passes_on_the_repo(self):
        completed = subprocess.run(
            [sys.executable, str(SCRIPT)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "invariants OK" in completed.stdout


class TestDeterminismCheck:
    def test_flags_wall_clock_calls(self, invariants):
        violations = _check(
            invariants,
            "check_determinism",
            "import time\ndef f():\n    return time.time()\n",
        )
        assert len(violations) == 1
        assert "wall-clock" in violations[0].message

    def test_flags_datetime_now(self, invariants):
        violations = _check(
            invariants,
            "check_determinism",
            "from datetime import datetime\nx = datetime.now()\n",
        )
        assert len(violations) == 1

    def test_flags_global_random(self, invariants):
        violations = _check(
            invariants,
            "check_determinism",
            "import random\ndef f():\n    return random.random()\n",
        )
        assert len(violations) == 1
        assert "seeded random.Random" in violations[0].message

    def test_allows_seeded_rng_instances(self, invariants):
        violations = _check(
            invariants,
            "check_determinism",
            "import random\ndef f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n",
        )
        assert violations == []


class TestFsyncBeforeReplaceCheck:
    def test_flags_replace_without_fsync(self, invariants):
        violations = _check(
            invariants,
            "check_fsync_before_replace",
            "import os\ndef publish(tmp, final):\n    os.replace(tmp, final)\n",
        )
        assert len(violations) == 1
        assert "os.fsync" in violations[0].message

    def test_allows_fsync_then_replace(self, invariants):
        violations = _check(
            invariants,
            "check_fsync_before_replace",
            "import os\n"
            "def publish(handle, tmp, final):\n"
            "    os.fsync(handle.fileno())\n"
            "    os.replace(tmp, final)\n",
        )
        assert violations == []

    def test_rule_is_enforced_repo_wide_not_just_streaming(self, invariants):
        """The durability rule must not be gated on the ``streaming/`` prefix.

        The segmented store publishes manifests and sealed segment
        directories with the same write-temp → fsync → replace idiom, so a
        replace-without-fsync anywhere in the tree is a durability bug.
        """
        source = SCRIPT.read_text(encoding="utf-8")
        assert 'if relative.startswith("streaming/")' not in source

    def test_segment_store_modules_pass_the_durability_rule(self, invariants):
        segment_dir = REPO_ROOT / "src" / "repro" / "storage" / "segment"
        checked = 0
        for path in sorted(segment_dir.glob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            assert _check_tree(invariants, "check_fsync_before_replace", path, tree) == []
            checked += 1
        assert checked >= 4  # columnio, manifest, segment, database, __init__


class TestMutableDefaultCheck:
    def test_flags_list_default(self, invariants):
        violations = _check(
            invariants, "check_mutable_defaults", "def f(items=[]):\n    pass\n"
        )
        assert len(violations) == 1
        assert "mutable default" in violations[0].message

    def test_flags_dict_keyword_default(self, invariants):
        violations = _check(
            invariants, "check_mutable_defaults", "def f(*, extra={}):\n    pass\n"
        )
        assert len(violations) == 1

    def test_allows_none_and_immutable_defaults(self, invariants):
        violations = _check(
            invariants,
            "check_mutable_defaults",
            "def f(items=None, name='x', count=0, pair=()):\n    pass\n",
        )
        assert violations == []
