"""Shared fixtures for the ThreatRaptor reproduction test suite."""

from __future__ import annotations

import pytest

from repro.auditing.workload.attacks import (
    DataLeakageAttack,
    Figure2DataLeakageChain,
    PasswordCrackingAttack,
)
from repro.auditing.workload.generator import HostSimulator, SimulationResult
from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.storage.loader import AuditStore


@pytest.fixture(scope="session")
def figure2_simulation() -> SimulationResult:
    """A small simulated host with the Figure 2 data-leakage chain injected."""
    simulator = (
        HostSimulator(seed=11, benign_scale=0.5)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
    )
    return simulator.run()


@pytest.fixture(scope="session")
def demo_simulation() -> SimulationResult:
    """The paper's demo deployment: benign workloads plus both demo attacks."""
    simulator = (
        HostSimulator(seed=23, benign_scale=0.5)
        .add_default_benign()
        .add_attack(PasswordCrackingAttack())
        .add_attack(DataLeakageAttack())
    )
    return simulator.run()


@pytest.fixture(scope="session")
def figure2_store(figure2_simulation: SimulationResult) -> AuditStore:
    """An audit store loaded with the Figure 2 simulation trace."""
    store = AuditStore()
    store.load_trace(figure2_simulation.trace)
    return store


@pytest.fixture(scope="session")
def figure2_raptor(figure2_simulation: SimulationResult) -> ThreatRaptor:
    """A ThreatRaptor instance loaded with the Figure 2 simulation trace."""
    raptor = ThreatRaptor(ThreatRaptorConfig())
    raptor.load_trace(figure2_simulation.trace)
    return raptor


@pytest.fixture(scope="session")
def figure2_report_text() -> str:
    """The paper's Figure 2 OSCTI report text."""
    return FIGURE2_REPORT.text
