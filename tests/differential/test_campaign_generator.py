"""Tests for the seeded kill-chain campaign generator."""

from __future__ import annotations

import io

from repro.auditing.sysdig import write_trace
from repro.scenarios import generate_campaigns, generate_labeled_trace


def _serialize(campaign) -> str:
    stream = io.StringIO()
    write_trace(campaign.trace, stream)
    return stream.getvalue()


class TestSeedDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = generate_labeled_trace(seed=42)
        second = generate_labeled_trace(seed=42)
        assert _serialize(first) == _serialize(second)
        assert first.ground_truth.event_ids == second.ground_truth.event_ids
        assert first.spec == second.spec
        assert [hunt.query_text for hunt in first.hunts] == [
            hunt.query_text for hunt in second.hunts
        ]
        assert [hunt.expected_event_ids for hunt in first.hunts] == [
            hunt.expected_event_ids for hunt in second.hunts
        ]

    def test_different_seeds_differ(self):
        assert _serialize(generate_labeled_trace(seed=1)) != _serialize(
            generate_labeled_trace(seed=2)
        )


class TestCampaignStructure:
    def test_ground_truth_events_are_labeled_malicious(self):
        campaign = generate_labeled_trace(seed=9)
        assert campaign.ground_truth.event_ids
        assert campaign.ground_truth.event_ids <= campaign.trace.malicious_event_ids
        # Benign noise is interleaved: most events are not malicious.
        assert len(campaign.trace.malicious_event_ids) < len(campaign.trace.events) / 2

    def test_hunts_target_ground_truth_subsets(self):
        campaign = generate_labeled_trace(seed=9)
        assert {hunt.name for hunt in campaign.hunts} == {"staging", "exfiltration"}
        for hunt in campaign.hunts:
            assert hunt.expected_event_ids
            assert hunt.expected_event_ids <= campaign.ground_truth.event_ids

    def test_ground_truth_steps_record_event_ids(self):
        campaign = generate_labeled_trace(seed=9)
        assert {step.event_id for step in campaign.ground_truth.steps} == (
            campaign.ground_truth.event_ids
        )

    def test_malicious_events_buried_mid_timeline(self):
        campaign = generate_labeled_trace(seed=9)
        ordered = sorted(campaign.trace.events, key=lambda e: e.start_time)
        first_malicious = next(
            index
            for index, event in enumerate(ordered)
            if event.event_id in campaign.ground_truth.event_ids
        )
        last_malicious = max(
            index
            for index, event in enumerate(ordered)
            if event.event_id in campaign.ground_truth.event_ids
        )
        assert first_malicious > 0
        assert last_malicious < len(ordered) - 1


class TestCampaignDiversity:
    def test_seeds_draw_diverse_kill_chains(self):
        campaigns = generate_campaigns(8, base_seed=300)
        variants = {campaign.spec.variants for campaign in campaigns}
        assert len(variants) >= 4
        hosts = {campaign.spec.hosts for campaign in campaigns}
        assert hosts <= {2, 3, 4}
        assert len(hosts) >= 2

    def test_campaign_names_and_lookup(self):
        campaign = generate_labeled_trace(seed=77)
        assert campaign.name == "campaign-77"
        assert campaign.hunt("exfiltration").name == "exfiltration"
        try:
            campaign.hunt("nope")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError for unknown hunt")
