"""Cross-engine differential verification over generated campaigns.

The acceptance harness of this test module runs ≥8 distinct generated
campaigns' expected TBQL hunts through every engine configuration —
vectorized/reference relational executor, relational/graph backend,
ad-hoc/prepared plans, batch/streaming replay — and asserts that every
configuration returns identical matched event-id sets and identical hunting
precision/recall/F1 on each campaign.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    BASELINE_CONFIGURATION,
    ENGINE_CONFIGURATIONS,
    DifferentialHarness,
    EngineConfiguration,
    generate_campaigns,
)

CAMPAIGN_COUNT = 8


@pytest.fixture(scope="module")
def campaigns():
    return generate_campaigns(CAMPAIGN_COUNT, base_seed=1200)


@pytest.fixture(scope="module")
def harness():
    return DifferentialHarness()


@pytest.fixture(scope="module")
def report(harness, campaigns):
    return harness.run(campaigns)


class TestConfigurationMatrix:
    def test_matrix_covers_every_axis_both_ways(self):
        assert {config.backend for config in ENGINE_CONFIGURATIONS} == {
            "relational",
            "graph",
            "sql",
        }
        assert {config.relational_executor for config in ENGINE_CONFIGURATIONS} == {
            "vectorized",
            "reference",
        }
        assert {config.prepared for config in ENGINE_CONFIGURATIONS} == {True, False}
        assert {config.streaming for config in ENGINE_CONFIGURATIONS} == {True, False}
        assert {config.graph_matcher for config in ENGINE_CONFIGURATIONS} == {
            "planner",
            "reference",
        }

    def test_configuration_names_unique(self):
        names = [config.name for config in ENGINE_CONFIGURATIONS]
        assert len(names) == len(set(names))

    def test_matrix_includes_sql_batch_and_streaming(self):
        sql_configs = [c for c in ENGINE_CONFIGURATIONS if c.backend == "sql"]
        assert {c.streaming for c in sql_configs} == {True, False}
        assert len(ENGINE_CONFIGURATIONS) >= 18


class TestDifferentialConsistency:
    def test_campaign_set_is_distinct(self, campaigns):
        assert len(campaigns) >= 8
        assert len({campaign.name for campaign in campaigns}) == len(campaigns)
        assert len({campaign.spec.variants for campaign in campaigns}) >= 4

    def test_all_configurations_agree_on_every_campaign(self, report):
        assert report.consistent, "\n".join(report.mismatches())

    def test_report_covers_full_matrix(self, report, campaigns):
        assert len(report.campaigns) == len(campaigns)
        expected_outcomes = len(ENGINE_CONFIGURATIONS) * 2  # two hunts per campaign
        for differential in report.campaigns:
            assert len(differential.outcomes) == expected_outcomes
            assert set(differential.campaign_scores) == set(report.configurations)

    def test_hunts_recover_their_chains_exactly(self, report, campaigns):
        by_name = {campaign.name: campaign for campaign in campaigns}
        for differential in report.campaigns:
            campaign = by_name[differential.campaign]
            for hunt in campaign.hunts:
                outcome = differential.outcome(BASELINE_CONFIGURATION.name, hunt.name)
                assert outcome.matched_event_ids == hunt.expected_event_ids
                assert outcome.score.as_dict() == {
                    "precision": 1.0,
                    "recall": 1.0,
                    "f1": 1.0,
                }

    def test_campaign_level_scores_identical_across_configurations(self, report):
        for differential in report.campaigns:
            scores = {
                tuple(sorted(score.as_dict().items()))
                for score in differential.campaign_scores.values()
            }
            assert len(scores) == 1


class TestDifferentialDetectsDivergence:
    def test_mismatch_is_reported(self, harness, campaigns):
        differential = harness.run_campaign(campaigns[0])
        # Corrupt one streaming outcome to prove the comparison has teeth.
        from dataclasses import replace as dc_replace

        for index, outcome in enumerate(differential.outcomes):
            if outcome.configuration != BASELINE_CONFIGURATION.name:
                differential.outcomes[index] = dc_replace(
                    outcome,
                    matched_event_ids=frozenset(set(outcome.matched_event_ids) | {10**9}),
                )
                break
        problems = differential.mismatches()
        assert problems
        assert "disagrees" in problems[0]


class TestReducedConfigurationSets:
    def test_single_configuration_harness(self, campaigns):
        harness = DifferentialHarness(
            configurations=(EngineConfiguration(name="only-relational"),)
        )
        report = harness.run(campaigns[:1])
        assert report.consistent
        assert report.summary()["configurations"] == ["only-relational"]

    def test_empty_configuration_set_rejected(self):
        with pytest.raises(ValueError):
            DifferentialHarness(configurations=())

    def test_reduction_disabled_still_consistent(self, campaigns):
        harness = DifferentialHarness(apply_reduction=False)
        report = harness.run(campaigns[:2])
        assert report.consistent, "\n".join(report.mismatches())
