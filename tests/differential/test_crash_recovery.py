"""Crash-recovery equivalence and chaos acceptance tests.

The acceptance harness of this module proves the crash-safety headline over
the full generated-campaign set: for all 8 seeded campaigns, killing the
hunting service at **every** micro-batch boundary and resuming it from
checkpoint + journal produces an alert journal **byte-identical** to an
uninterrupted run's, and identical matched event ids.

The chaos test then runs a campaign through a log stream with seeded fault
injection — corrupt lines, transient read-error bursts, flaky alert
delivery — and asserts the hunt completes with the clean run's answers while
the statistics account for every injected fault.
"""

from __future__ import annotations

import io

import pytest

from repro.auditing.sysdig import write_trace
from repro.core.pipeline import ThreatRaptor
from repro.scenarios import (
    CrashRecoveryHarness,
    FaultPlan,
    FaultyStream,
    FlakySink,
    generate_campaigns,
)
from repro.streaming import (
    HuntingService,
    LogTailSource,
    ReplaySource,
    RetryingSink,
    RetryPolicy,
)

CAMPAIGN_COUNT = 8
BATCH_SIZE = 96


@pytest.fixture(scope="module")
def campaigns():
    return generate_campaigns(CAMPAIGN_COUNT, base_seed=1200)


class TestCrashRecoveryEquivalence:
    def test_every_batch_boundary_of_every_campaign(self, campaigns, tmp_path):
        """Kill-at-every-boundary + resume == uninterrupted, for all campaigns."""
        assert len(campaigns) == CAMPAIGN_COUNT
        for campaign in campaigns:
            harness = CrashRecoveryHarness(tmp_path / campaign.name, batch_size=BATCH_SIZE)
            assert harness.batch_count(campaign) >= 2  # crash points are real
            report = harness.verify(campaign)
            assert report.mismatches() == []
            # Every crash point after the first journaled alert must actually
            # exercise recovery (entries read back from disk).
            assert any(outcome.recovered_entries > 0 for outcome in report.outcomes)
            assert all(outcome.resumed for outcome in report.outcomes)

    def test_resumed_journal_is_byte_identical(self, campaigns, tmp_path):
        campaign = campaigns[0]
        harness = CrashRecoveryHarness(tmp_path, batch_size=BATCH_SIZE)
        baseline_bytes, baseline_matched = harness.uninterrupted(campaign)
        assert baseline_bytes  # the campaign raises alerts at all
        outcome = harness.crash_and_resume(campaign, boundary=1)
        assert outcome.journal_bytes == baseline_bytes
        assert outcome.matched == baseline_matched


class TestChaosInjection:
    def _log_lines(self, campaign):
        buffer = io.StringIO()
        write_trace(campaign.trace, buffer)
        return buffer.getvalue()

    def _clean_matched(self, campaign):
        raptor = ThreatRaptor()
        service = HuntingService(raptor=raptor, batch_size=BATCH_SIZE)
        for hunt in campaign.hunts:
            service.register_hunt(hunt.name, query=hunt.query_text)
        service.run(ReplaySource(campaign.trace))
        return {hunt.name: service.matched_event_ids(hunt.name) for hunt in campaign.hunts}

    def test_hunt_survives_injected_faults_with_identical_answers(self, campaigns):
        """~5% corrupt lines + read-error bursts + flaky delivery: the run
        completes, answers match the clean run, and every fault is accounted
        for in statistics."""
        campaign = campaigns[0]
        clean = self._clean_matched(campaign)
        plan = FaultPlan(
            seed=97,
            corrupt_line_rate=0.05,
            read_error_rate=0.02,
            read_error_burst=2,
            sink_error_rate=0.2,
            sink_error_burst=2,
        )
        stream = FaultyStream(io.StringIO(self._log_lines(campaign)), plan)
        retry = RetryPolicy(max_attempts=5, base_delay=0.0)
        source = LogTailSource(stream=stream, retry=retry, sleep=lambda _: None)

        flaky = FlakySink(plan)
        delivery = RetryingSink(flaky, policy=retry, sleep=lambda _: None)
        raptor = ThreatRaptor()
        service = HuntingService(raptor=raptor, batch_size=BATCH_SIZE, sinks=(delivery,))
        for hunt in campaign.hunts:
            service.register_hunt(hunt.name, query=hunt.query_text)
        service.run(source)

        # Same answers as the clean run: injected corruption must not change
        # what the hunts match.
        matched = {
            hunt.name: service.matched_event_ids(hunt.name) for hunt in campaign.hunts
        }
        assert matched == clean

        # Every injected fault is visible in the accounting.
        assert stream.corrupt_lines > 0
        assert stream.read_errors > 0
        assert source.statistics.records_skipped == stream.corrupt_lines
        assert source.retry_stats.retries == stream.read_errors
        assert source.retry_stats.giveups == 0
        assert flaky.failures > 0
        assert delivery.stats.retries == flaky.failures
        assert delivery.stats.giveups == 0
        # Every alert was delivered despite the flaky sink.
        stats = service.statistics()
        delivered = sum(hunt["alerts"] for hunt in stats["hunts"].values())
        assert len(flaky.delivered) == delivered

    def test_fault_injection_is_deterministic(self, campaigns):
        campaign = campaigns[1]
        text = self._log_lines(campaign)

        def run_once():
            plan = FaultPlan(seed=5, corrupt_line_rate=0.05, read_error_rate=0.02)
            stream = FaultyStream(io.StringIO(text), plan)
            source = LogTailSource(
                stream=stream,
                retry=RetryPolicy(max_attempts=5, base_delay=0.0),
                sleep=lambda _: None,
            )
            raptor = ThreatRaptor()
            service = HuntingService(raptor=raptor, batch_size=BATCH_SIZE)
            for hunt in campaign.hunts:
                service.register_hunt(hunt.name, query=hunt.query_text)
            service.run(source)
            return (
                stream.corrupt_lines,
                stream.read_errors,
                {h.name: service.matched_event_ids(h.name) for h in campaign.hunts},
            )

        assert run_once() == run_once()
