"""The static-analysis admission gate, end to end.

Covers the engine's ``analysis_mode``, the prepared-query gate, pipeline
configuration, the monitor's quarantine-at-registration path, corpus
reject-with-provenance, and the acceptance property that every bundled
campaign hunt and corpus-synthesized query lints clean of errors.
"""

from __future__ import annotations

import pytest

from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.data.osctireports import corpus_variants
from repro.errors import ConfigurationError, ExecutionError, TBQLAnalysisError
from repro.intel.corpus import ReportCorpus
from repro.scenarios import generate_campaigns
from repro.storage.loader import AuditStore
from repro.tbql.analysis import analyze_query
from repro.tbql.executor import TBQLExecutionEngine

CONTRADICTORY = 'proc p["x"] read file f[id > 100 and id < 10] as e1 return p, f'
CLEAN = 'proc p["%sh%"] read file f["/etc/%"] as e1 return p, f'


class TestEngineGate:
    def test_enforce_rejects_execution(self):
        engine = TBQLExecutionEngine(AuditStore())
        with pytest.raises(TBQLAnalysisError, match="TR101"):
            engine.execute(CONTRADICTORY)

    def test_enforce_rejects_preparation(self):
        engine = TBQLExecutionEngine(AuditStore())
        with pytest.raises(TBQLAnalysisError):
            engine.prepare(CONTRADICTORY)

    def test_enforce_passes_clean_queries(self):
        engine = TBQLExecutionEngine(AuditStore())
        result = engine.execute(CLEAN)
        assert len(result) == 0
        prepared = engine.prepare(CLEAN)
        assert prepared.analysis is not None
        assert not prepared.analysis.has_errors()

    def test_warn_mode_reports_without_gating(self):
        engine = TBQLExecutionEngine(AuditStore(), analysis_mode="warn")
        assert len(engine.execute(CONTRADICTORY)) == 0
        prepared = engine.prepare(CONTRADICTORY)
        assert prepared.analysis is not None
        assert "TR101" in prepared.analysis.rules()

    def test_off_mode_skips_analysis(self):
        engine = TBQLExecutionEngine(AuditStore(), analysis_mode="off")
        assert len(engine.execute(CONTRADICTORY)) == 0
        assert engine.prepare(CONTRADICTORY).analysis is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExecutionError, match="analysis mode"):
            TBQLExecutionEngine(AuditStore(), analysis_mode="strict")

    def test_engine_analyze_never_gates(self):
        engine = TBQLExecutionEngine(AuditStore())
        report = engine.analyze(CONTRADICTORY)
        assert report.has_errors()

    def test_diagnostics_travel_on_the_exception(self):
        engine = TBQLExecutionEngine(AuditStore())
        with pytest.raises(TBQLAnalysisError) as excinfo:
            engine.execute(CONTRADICTORY)
        rules = [diagnostic.rule for diagnostic in excinfo.value.diagnostics]
        assert rules == ["TR101"]


class TestPipelineConfig:
    def test_config_validates_analysis_mode(self):
        with pytest.raises(ConfigurationError, match="analysis_mode"):
            ThreatRaptorConfig(analysis_mode="never").validate()
        ThreatRaptorConfig(analysis_mode="warn").validate()

    def test_pipeline_gate_follows_config(self):
        enforcing = ThreatRaptor()
        with pytest.raises(TBQLAnalysisError):
            enforcing.execute_query(CONTRADICTORY)
        permissive = ThreatRaptor(ThreatRaptorConfig(analysis_mode="off"))
        assert len(permissive.execute_query(CONTRADICTORY)) == 0

    def test_pipeline_analyze_query(self):
        raptor = ThreatRaptor()
        report = raptor.analyze_query(CONTRADICTORY)
        assert "TR101" in report.rules()
        assert len(raptor.analyze_query(CLEAN)) == 0


class TestMonitorQuarantine:
    def test_lint_rejected_hunt_is_quarantined_with_provenance(self):
        raptor = ThreatRaptor()
        service = raptor.watch(query=CLEAN, name="good")
        standing = service._monitor.register(
            "bad", CONTRADICTORY, provenance=("report-7",), canonical_key="k-bad"
        )
        assert standing.quarantined
        assert standing.status == "quarantined"
        assert standing.prepared is None
        assert standing.provenance == ("report-7",)
        assert standing.analysis is not None and standing.analysis.has_errors()
        assert "static analysis" in standing.last_error
        assert "TR101" in standing.last_error
        # Evaluation skips it without raising, and the canonical key still
        # routes (a later equivalent report extends provenance, it does not
        # crash into a duplicate registration).
        assert service._monitor.evaluate(0, None) == []
        assert service._monitor.by_canonical_key("k-bad") is standing

    def test_clean_hunt_registers_with_analysis_attached(self):
        raptor = ThreatRaptor()
        service = raptor.watch(query=CLEAN, name="good")
        standing = service.hunt("good")
        assert standing.status == "ok"
        assert standing.prepared is not None
        assert standing.analysis is not None
        assert not standing.analysis.has_errors()

    def test_warn_mode_monitor_does_not_quarantine(self):
        raptor = ThreatRaptor(ThreatRaptorConfig(analysis_mode="warn"))
        service = raptor.watch(query=CLEAN, name="good")
        standing = service._monitor.register("bad", CONTRADICTORY)
        assert not standing.quarantined
        assert standing.analysis is None


class TestCorpusRejection:
    @pytest.fixture()
    def small_corpus(self):
        return ReportCorpus(corpus_variants(4, seed=13))

    def test_contradictory_synthesized_hunts_rejected_with_provenance(
        self, small_corpus
    ):
        raptor = ThreatRaptor()
        # A degenerate synthesis window (end < start) flows unvalidated into
        # every synthesized pattern; the analyzer must prove the queries
        # unsatisfiable (TR105) and the corpus pass must reject them while
        # keeping the report provenance.
        raptor._synthesizer._plan.time_window = (100, 50)
        result = raptor.hunt_corpus(small_corpus)
        assert result.hunts == []
        assert result.service.hunts == []
        assert result.rejected
        rejected_ids = [
            report_id
            for rejection in result.rejected
            for report_id in rejection.report_ids
        ]
        assert sorted(rejected_ids) == sorted(
            report.report_id for report in small_corpus
        )
        for rejection in result.rejected:
            assert rejection.canonical_key
            assert rejection.query_text
            rules = {diagnostic.rule for diagnostic in rejection.diagnostics}
            assert "TR105" in rules
        summary = result.summary()
        assert summary["hunts_rejected"] == len(result.rejected)
        assert summary["rejected_reports"] == len(rejected_ids)
        assert summary["hunts_registered"] == 0

    def test_off_mode_skips_corpus_gate(self, small_corpus):
        raptor = ThreatRaptor(ThreatRaptorConfig(analysis_mode="off"))
        raptor._synthesizer._plan.time_window = (100, 50)
        result = raptor.hunt_corpus(small_corpus)
        assert result.rejected == []
        assert result.hunts

    def test_healthy_corpus_has_no_rejections(self, small_corpus):
        raptor = ThreatRaptor()
        result = raptor.hunt_corpus(small_corpus)
        assert result.rejected == []
        assert result.summary()["hunts_rejected"] == 0
        for standing in result.service.hunts:
            assert standing.status == "ok"
            assert standing.analysis is not None
            assert not standing.analysis.has_errors()


class TestBundledHuntsLintClean:
    def test_campaign_hunts_have_no_error_diagnostics(self):
        for campaign in generate_campaigns(3, base_seed=700):
            for hunt in campaign.hunts:
                report = analyze_query(hunt.query_text)
                assert not report.has_errors(), (
                    f"{campaign.name}/{hunt.name}: {report.render()}"
                )

    def test_corpus_synthesized_queries_have_no_error_diagnostics(self):
        raptor = ThreatRaptor()
        for corpus_report in ReportCorpus.bundled(auditable_only=True):
            extraction = raptor.extract_behavior_graph(corpus_report.text)
            query = raptor.synthesize_query(extraction.graph)
            report = analyze_query(query)
            assert not report.has_errors(), (
                f"{corpus_report.report_id}: {report.render()}"
            )
