"""Integration tests for the full threat behavior extraction pipeline (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.data import ALL_REPORTS, FIGURE2_REPORT, report_by_name
from repro.evaluation import score_ioc_extraction, score_relation_extraction
from repro.nlp.extractor import NaiveCooccurrenceExtractor, ThreatBehaviorExtractor


@pytest.fixture(scope="module")
def extractor() -> ThreatBehaviorExtractor:
    return ThreatBehaviorExtractor()


class TestFigure2Extraction:
    """The paper's Figure 2 walk-through must reproduce exactly."""

    @pytest.fixture(scope="class")
    def result(self):
        return ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text)

    def test_all_iocs_recognised(self, result):
        recognised = {ioc.normalized() for ioc in result.iocs}
        for expected in FIGURE2_REPORT.ioc_ground_truth:
            assert expected.lower() in recognised

    def test_exactly_eight_edges(self, result):
        assert len(result.graph.edges) == 8

    def test_edges_match_figure2(self, result):
        edges = {(e.subject.text, e.verb, e.obj.text) for e in result.graph.edges}
        assert edges == set(FIGURE2_REPORT.relation_ground_truth)

    def test_edge_order_matches_attack_steps(self, result):
        ordered = [
            (e.subject.text, e.verb, e.obj.text) for e in result.graph.edges_in_order()
        ]
        assert ordered == [
            ("/bin/tar", "read", "/etc/passwd"),
            ("/bin/tar", "write", "/tmp/upload.tar"),
            ("/bin/bzip2", "read", "/tmp/upload.tar"),
            ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "write", "/tmp/upload"),
            ("/usr/bin/curl", "read", "/tmp/upload"),
            ("/usr/bin/curl", "connect", "192.168.29.128"),
        ]

    def test_coreference_link_created(self, result):
        assert result.coreference_links >= 1

    def test_perfect_scores_on_figure2(self, result):
        ioc_score = score_ioc_extraction(result, FIGURE2_REPORT)
        relation_score = score_relation_extraction(result, FIGURE2_REPORT)
        assert ioc_score.recall == 1.0
        assert relation_score.precision == 1.0
        assert relation_score.recall == 1.0


class TestCorpusExtraction:
    @pytest.mark.parametrize("report", ALL_REPORTS, ids=lambda r: r.name)
    def test_ioc_recall_high_on_all_reports(self, extractor, report):
        result = extractor.extract(report.text)
        score = score_ioc_extraction(result, report)
        assert score.recall >= 0.8, f"{report.name}: IOC recall {score.recall}"

    @pytest.mark.parametrize(
        "report",
        [r for r in ALL_REPORTS if r.relation_ground_truth],
        ids=lambda r: r.name,
    )
    def test_relation_f1_reasonable_on_all_reports(self, extractor, report):
        result = extractor.extract(report.text)
        score = score_relation_extraction(result, report)
        assert score.recall >= 0.6, f"{report.name}: relation recall {score.recall}"
        assert score.precision >= 0.6, f"{report.name}: relation precision {score.precision}"

    def test_non_auditable_report_has_no_relations(self, extractor):
        report = report_by_name("phishing-infrastructure")
        result = extractor.extract(report.text)
        assert len(result.graph.edges) == 0
        assert len(result.iocs) >= 4

    def test_empty_document(self, extractor):
        result = extractor.extract("")
        assert result.graph.summary() == {"nodes": 0, "edges": 0}
        assert result.iocs == []

    def test_document_without_iocs(self, extractor):
        result = extractor.extract("The quick brown fox jumps over the lazy dog. It was fast.")
        assert result.graph.edges == []

    def test_multi_block_document_processed_blockwise(self, extractor):
        document = (
            "Stage one. The attacker used /bin/tar to read /etc/passwd.\n\n"
            "Stage two. It connected to 10.9.8.7."
        )
        result = extractor.extract(document)
        # "It" is in a different block, so it must NOT corefer to /bin/tar.
        edges = {(e.subject.text, e.verb, e.obj.text) for e in result.graph.edges}
        assert ("/bin/tar", "read", "/etc/passwd") in edges
        assert ("/bin/tar", "connect", "10.9.8.7") not in edges


class TestNaiveBaseline:
    def test_baseline_recognises_iocs(self):
        result = NaiveCooccurrenceExtractor().extract(FIGURE2_REPORT.text)
        assert len(result.iocs) >= 5

    def test_baseline_worse_than_full_pipeline_on_relations(self):
        full = ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text)
        naive = NaiveCooccurrenceExtractor().extract(FIGURE2_REPORT.text)
        full_score = score_relation_extraction(full, FIGURE2_REPORT)
        naive_score = score_relation_extraction(naive, FIGURE2_REPORT)
        assert full_score.f1 > naive_score.f1

    def test_baseline_produces_spurious_or_missing_relations(self):
        naive = NaiveCooccurrenceExtractor().extract(FIGURE2_REPORT.text)
        predicted = {(e.subject.text, e.verb, e.obj.text) for e in naive.graph.edges}
        expected = set(FIGURE2_REPORT.relation_ground_truth)
        assert predicted != expected


class TestPlaceholderAmbiguityFix:
    """Unique positional placeholders make IOC restoration unambiguous."""

    def test_report_containing_the_word_something(self, extractor):
        text = (
            "The operator suspected something was wrong. "
            "The attacker used /bin/tar to read /etc/passwd. "
            "Something similar happened before."
        )
        result = extractor.extract(text)
        edges = {
            (edge.subject.text, edge.verb, edge.obj.text) for edge in result.graph.edges
        }
        assert edges == {("/bin/tar", "read", "/etc/passwd")}
        # The natural-language "something" never becomes an IOC node.
        assert all("something" not in node.text for node in result.graph.nodes)

    def test_many_iocs_in_one_sentence_restore_positionally(self, extractor):
        text = (
            "/bin/tar read /etc/passwd and wrote /tmp/upload.tar, then /bin/bzip2 "
            "read /tmp/upload.tar and wrote /tmp/upload.tar.bz2."
        )
        result = extractor.extract(text)
        # Every placeholder restored to the IOC at its own position: the
        # recognised occurrence order survives the protect/parse/restore trip.
        assert [ioc.text for ioc in result.iocs] == [
            "/bin/tar",
            "/etc/passwd",
            "/tmp/upload.tar",
            "/bin/bzip2",
            "/tmp/upload.tar",
            "/tmp/upload.tar.bz2",
        ]
        # No placeholder text ever leaks into the graph.
        assert all("something" not in node.text for node in result.graph.nodes)
        edges = {
            (edge.subject.text, edge.verb, edge.obj.text) for edge in result.graph.edges
        }
        assert ("/bin/tar", "read", "/etc/passwd") in edges

    def test_case_sensitive_paths_stay_distinct(self, extractor):
        text = (
            "The dropper wrote the payload to /tmp/Payload. "
            "Later the cleaner read /tmp/payload."
        )
        result = extractor.extract(text)
        canonical = {ioc.text for ioc in result.canonical_iocs()}
        assert {"/tmp/Payload", "/tmp/payload"} <= canonical

    def test_literal_placeholder_text_not_restored(self, extractor):
        text = (
            "The variable something_0 appeared in the script. "
            "The attacker used /bin/tar to read /etc/passwd."
        )
        result = extractor.extract(text)
        edges = {
            (edge.subject.text, edge.verb, edge.obj.text) for edge in result.graph.edges
        }
        assert edges == {("/bin/tar", "read", "/etc/passwd")}
        # The literal token never steals the first recorded IOC.
        assert {node.text for node in result.graph.nodes} == {"/bin/tar", "/etc/passwd"}
