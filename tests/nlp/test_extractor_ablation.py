"""Unit tests for the extraction pipeline's ablation switches."""

from __future__ import annotations

import pytest

from repro.data import FIGURE2_REPORT, report_by_name
from repro.evaluation import score_relation_extraction
from repro.nlp.extractor import ThreatBehaviorExtractor


class TestAblationSwitches:
    def test_default_switches_enabled(self):
        extractor = ThreatBehaviorExtractor()
        result = extractor.extract(FIGURE2_REPORT.text)
        assert score_relation_extraction(result, FIGURE2_REPORT).f1 == 1.0

    def test_no_protection_still_runs_and_degrades(self):
        result = ThreatBehaviorExtractor(protect_iocs_enabled=False).extract(FIGURE2_REPORT.text)
        score = score_relation_extraction(result, FIGURE2_REPORT)
        assert score.f1 < 1.0
        # IOC recognition itself still works on the raw text.
        assert {ioc.normalized() for ioc in result.iocs} >= {"/bin/tar", "/etc/passwd"}

    def test_no_coreference_loses_pronoun_relation(self):
        result = ThreatBehaviorExtractor(resolve_coreference=False).extract(FIGURE2_REPORT.text)
        edges = {(e.subject.text, e.verb, e.obj.text) for e in result.graph.edges}
        assert ("/bin/tar", "write", "/tmp/upload.tar") not in edges
        assert result.coreference_links == 0

    def test_no_simplification_keeps_accuracy(self):
        full = ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text)
        unsimplified = ThreatBehaviorExtractor(simplify_trees=False).extract(FIGURE2_REPORT.text)
        assert {(e.subject.text, e.verb, e.obj.text) for e in full.graph.edges} == {
            (e.subject.text, e.verb, e.obj.text) for e in unsimplified.graph.edges
        }
        # Unsimplified trees retain more nodes.
        assert sum(len(t.nodes) for t in unsimplified.trees) > sum(
            len(t.nodes) for t in full.trees
        )

    @pytest.mark.parametrize("report_name", ["password-cracking", "credential-theft"])
    def test_ablations_never_crash_on_corpus(self, report_name):
        text = report_by_name(report_name).text
        for kwargs in (
            {"protect_iocs_enabled": False},
            {"resolve_coreference": False},
            {"simplify_trees": False},
        ):
            result = ThreatBehaviorExtractor(**kwargs).extract(text)
            assert result.graph is not None
