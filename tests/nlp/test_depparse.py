"""Unit tests for the rule-based dependency parser."""

from __future__ import annotations

from repro.nlp.depparse import DependencyParser, parse_sentence
from repro.nlp.deptree import DependencyNode
from repro.nlp.ioc import PROTECTION_WORD, protect_iocs


def _parse_protected(text: str):
    """Protect IOCs, parse, restore — the way the extractor drives the parser."""
    protected = protect_iocs(text)
    tree = DependencyParser().parse(protected.text)
    tree.restore_iocs(protected.replacements)
    tree.annotate()
    return tree


def _find(tree, text: str) -> DependencyNode:
    for node in tree.nodes:
        if node.text == text or (node.ioc is not None and node.ioc.text == text):
            return node
    raise AssertionError(f"node {text!r} not found in tree")


class TestBasicStructures:
    def test_subject_verb_object(self):
        tree = parse_sentence("The attacker read the file.")
        root = tree.root
        assert root.text == "read"
        labels = {child.label: child.text for child in root.children}
        assert labels.get("nsubj") == "attacker"
        assert labels.get("dobj") == "file"

    def test_every_node_reachable_from_root(self):
        tree = parse_sentence("As a first step, the attacker used the tool to read credentials from the store.")
        reachable = {id(tree.root)} | {id(node) for node in tree.root.descendants()}
        assert {id(node) for node in tree.nodes} == reachable

    def test_single_root(self):
        tree = parse_sentence("The process wrote the log and closed the handle.")
        roots = [node for node in tree.nodes if node.parent is None]
        assert roots == [tree.root]

    def test_prepositional_attachment_to_verb(self):
        tree = parse_sentence("The process read data from the store.")
        root = tree.root
        preps = [child for child in root.children if child.label.startswith("prep_")]
        assert len(preps) == 1
        assert preps[0].label == "prep_from"
        assert preps[0].children[0].label == "pobj"

    def test_of_attaches_to_noun(self):
        tree = parse_sentence("The details of the attack are unclear.")
        details = _find(tree, "details")
        assert any(child.label == "prep_of" for child in details.children)

    def test_determiners_and_modifiers_under_noun(self):
        tree = parse_sentence("The malicious process wrote the large archive.")
        archive = _find(tree, "archive")
        labels = {child.label for child in archive.children}
        assert "det" in labels and "amod" in labels

    def test_empty_sentence(self):
        tree = parse_sentence("   ")
        assert tree.root is not None
        assert len(tree.nodes) == 1


class TestReportConstructions:
    def test_instrument_purpose_clause(self):
        tree = _parse_protected("The attacker used /bin/tar to read user credentials from /etc/passwd.")
        used = tree.root
        assert used.text == "used"
        tar = _find(tree, "/bin/tar")
        assert tar.label == "dobj"
        read_nodes = [node for node in tree.nodes if node.text == "read"]
        assert read_nodes and read_nodes[0].label == "xcomp"
        passwd = _find(tree, "/etc/passwd")
        assert passwd.label == "pobj"
        assert passwd.parent.label == "prep_from"

    def test_pronoun_subject(self):
        tree = _parse_protected("It wrote the gathered information to a file /tmp/upload.tar.")
        it_node = _find(tree, "It")
        assert it_node.label == "nsubj"
        upload = _find(tree, "/tmp/upload.tar")
        assert upload.parent.label == "prep_to" or upload.label == "pobj"

    def test_conjoined_verbs_share_structure(self):
        tree = _parse_protected("/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2.")
        read_node = tree.root
        assert read_node.text == "read"
        wrote = [node for node in tree.nodes if node.text == "wrote"]
        assert wrote and wrote[0].label == "conj"
        bz2 = _find(tree, "/tmp/upload.tar.bz2")
        assert bz2.label == "pobj"

    def test_participial_clause_after_noun(self):
        tree = _parse_protected(
            "The launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2 was observed."
        )
        gpg = _find(tree, "/usr/bin/gpg")
        reading = [node for node in tree.nodes if node.text == "reading"]
        assert reading
        assert reading[0].parent is gpg
        assert reading[0].label == "acl"

    def test_parenthetical_apposition(self):
        tree = _parse_protected("The attacker leveraged the curl utility (/usr/bin/curl) to read the data.")
        curl = _find(tree, "/usr/bin/curl")
        assert curl.label == "appos"

    def test_by_using_gerund(self):
        tree = _parse_protected(
            "He leaked the information by using /usr/bin/curl to connect to 192.168.29.128."
        )
        using = [node for node in tree.nodes if node.text == "using"]
        assert using and using[0].label == "pcomp"
        curl = _find(tree, "/usr/bin/curl")
        assert curl.label == "dobj"
        ip_node = _find(tree, "192.168.29.128")
        assert ip_node.label == "pobj"

    def test_passive_voice(self):
        tree = _parse_protected("The payload /tmp/locker.elf was then executed by /bin/sh.")
        executed = [node for node in tree.nodes if node.text == "executed"][0]
        labels = {child.label for child in executed.children}
        assert "nsubjpass" in labels
        assert "agent" in labels or any(
            child.label == "agent" for child in executed.children
        )

    def test_relative_clause(self):
        tree = _parse_protected(
            "The attacker encrypted the file, which corresponds to the process /usr/bin/gpg."
        )
        corresponds = [node for node in tree.nodes if node.text == "corresponds"]
        assert corresponds and corresponds[0].label == "relcl"


class TestAnnotationsOnParse:
    def test_ioc_nodes_restored(self):
        tree = _parse_protected("The attacker used /bin/tar to read /etc/passwd.")
        ioc_texts = {node.ioc.text for node in tree.direct_ioc_nodes()}
        assert ioc_texts == {"/bin/tar", "/etc/passwd"}

    def test_candidate_verbs_annotated(self):
        tree = _parse_protected("The attacker used /bin/tar to read /etc/passwd.")
        verbs = {node.text for node in tree.candidate_verb_nodes()}
        assert "read" in verbs
        assert "used" in verbs

    def test_pronouns_annotated(self):
        tree = _parse_protected("It wrote the data to /tmp/out.tar.")
        assert any(node.text == "It" for node in tree.pronoun_nodes())

    def test_dummy_word_without_mapping_is_not_ioc(self):
        tree = DependencyParser().parse(f"The {PROTECTION_WORD} happened.")
        tree.restore_iocs([])
        assert tree.direct_ioc_nodes() == []
