"""Unit tests for IOC recognition and protection."""

from __future__ import annotations

from repro.nlp.ioc import (
    IOC,
    PROTECTION_WORD,
    IOCType,
    ioc_type_counts,
    is_protection_placeholder,
    placeholder_index,
    protect_iocs,
    protection_placeholder,
    recognize_iocs,
)


def _types(text: str) -> dict[str, str]:
    return {match.text: match.ioc_type.value for match in recognize_iocs(text)}


class TestRecognition:
    def test_unix_file_paths(self):
        found = _types("The attacker used /bin/tar to read /etc/passwd quickly.")
        assert found["/bin/tar"] == "filepath"
        assert found["/etc/passwd"] == "filepath"

    def test_path_with_extension_and_dots(self):
        found = _types("It wrote to /tmp/upload.tar.bz2 afterwards.")
        assert found["/tmp/upload.tar.bz2"] == "filepath"

    def test_windows_path(self):
        found = _types(r"The dropper copied itself to C:\Windows\Temp\svch0st.exe today.")
        assert any(value == "filepath" for value in found.values())

    def test_bare_filename(self):
        found = _types("The attachment invoice.doc contains a macro.")
        assert found["invoice.doc"] == "filename"

    def test_ip_address(self):
        found = _types("It connects to 192.168.29.128 over TLS.")
        assert found["192.168.29.128"] == "ip"

    def test_ip_with_cidr_and_port(self):
        found = _types("Traffic went to 10.0.0.0/24 and 1.2.3.4:8080 at night.")
        assert any(key.startswith("10.0.0.0/24") for key in found)
        assert any(key.startswith("1.2.3.4") for key in found)

    def test_defanged_ip(self):
        found = _types("Beacons reach 203[.]0[.]113[.]7 hourly.")
        assert any(value == "ip" for value in found.values())

    def test_url(self):
        found = _types("Payload hosted at https://evil.example.com/malware.bin for days.")
        assert any(value == "url" for value in found.values())

    def test_defanged_url(self):
        found = _types("See hxxp://bad[.]site/payload for the dropper.")
        assert any(value == "url" for value in found.values())

    def test_domain(self):
        found = _types("The C2 domain update-checker.net resolves daily.")
        assert found.get("update-checker.net") == "domain"

    def test_email(self):
        found = _types("Mail came from billing@secure-pay.biz yesterday.")
        assert found["billing@secure-pay.biz"] == "email"

    def test_hashes(self):
        md5 = "9e107d9d372bb6826bd81d3542a419d6"
        sha1 = "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        sha256 = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        found = _types(f"Hashes: {md5} and {sha1} and {sha256} were observed.")
        assert found[md5] == "hash"
        assert found[sha1] == "hash"
        assert found[sha256] == "hash"

    def test_registry_key(self):
        found = _types(r"Persistence via HKEY_LOCAL_MACHINE\Software\Run\updater key.")
        assert any(value == "registry" for value in found.values())

    def test_cve(self):
        found = _types("Exploits CVE-2014-6271 in bash.")
        assert found["CVE-2014-6271"] == "cve"

    def test_trailing_punctuation_trimmed(self):
        matches = recognize_iocs("The tool read /etc/passwd.")
        assert any(match.text == "/etc/passwd" for match in matches)

    def test_no_overlapping_matches(self):
        matches = recognize_iocs("Get it from https://evil.example.com/a.exe now.")
        spans = sorted((match.start, match.end) for match in matches)
        for (start_a, end_a), (start_b, end_b) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_plain_english_produces_no_iocs(self):
        assert recognize_iocs("The attacker stole valuable assets from the host.") == []

    def test_matches_ordered_by_offset(self):
        matches = recognize_iocs("/bin/tar read /etc/passwd and wrote /tmp/out.tar later.")
        offsets = [match.start for match in matches]
        assert offsets == sorted(offsets)

    def test_ioc_type_counts(self):
        matches = recognize_iocs("/bin/tar read /etc/passwd and sent it to 1.2.3.4 quickly.")
        counts = ioc_type_counts(match.ioc for match in matches)
        assert counts["filepath"] == 2
        assert counts["ip"] == 1


class TestProtection:
    def test_protected_text_has_no_iocs(self):
        protected = protect_iocs("/bin/tar read /etc/passwd.")
        assert "/bin/tar" not in protected.text
        assert "/etc/passwd" not in protected.text
        assert protected.text.count(PROTECTION_WORD) == 2

    def test_replacements_recorded_in_order(self):
        protected = protect_iocs("/bin/tar read /etc/passwd.")
        assert [ioc.text for ioc in protected.iocs()] == ["/bin/tar", "/etc/passwd"]

    def test_offsets_point_at_dummy_words(self):
        protected = protect_iocs("First /bin/tar then /etc/passwd were used.")
        for offset, ioc in protected.replacements:
            assert protected.text[offset : offset + len(PROTECTION_WORD)] == PROTECTION_WORD
            assert protected.ioc_at_offset(offset) == ioc

    def test_ioc_at_unknown_offset_returns_none(self):
        protected = protect_iocs("/bin/tar was used.")
        assert protected.ioc_at_offset(99999) is None

    def test_original_text_preserved(self):
        text = "/bin/tar read /etc/passwd."
        assert protect_iocs(text).original == text

    def test_text_without_iocs_unchanged(self):
        text = "Nothing suspicious here at all."
        protected = protect_iocs(text)
        assert protected.text == text
        assert protected.replacements == []

    def test_protection_preserves_sentence_structure(self):
        protected = protect_iocs("The attacker used /bin/tar to read /etc/passwd.")
        assert protected.text == (
            f"The attacker used {protection_placeholder(0)} "
            f"to read {protection_placeholder(1)}."
        )

    def test_placeholders_are_positionally_unique(self):
        protected = protect_iocs("/bin/tar read /etc/passwd and wrote /tmp/out.tar.")
        placeholders = [
            protected.text[offset:].split()[0].rstrip(".")
            for offset, _ in protected.replacements
        ]
        assert placeholders == [protection_placeholder(i) for i in range(3)]
        assert len(set(placeholders)) == 3

    def test_literal_something_in_report_not_confused_with_placeholder(self):
        protected = protect_iocs("The attacker did something to /etc/passwd.")
        assert len(protected.replacements) == 1
        # The natural word survives untouched; only the IOC is replaced.
        assert "did something to" in protected.text
        assert protection_placeholder(0) in protected.text

    def test_placeholder_helpers(self):
        assert is_protection_placeholder(protection_placeholder(7))
        assert not is_protection_placeholder(PROTECTION_WORD)
        assert not is_protection_placeholder("something_x")
        assert placeholder_index("something_12") == 12
        assert placeholder_index("something") is None


class TestNormalization:
    def test_paths_keep_case(self):
        upper = IOC(text="/tmp/Payload", ioc_type=IOCType.FILEPATH)
        lower = IOC(text="/tmp/payload", ioc_type=IOCType.FILEPATH)
        assert upper.normalized() == "/tmp/Payload"
        assert upper.normalized() != lower.normalized()

    def test_case_insensitive_types_lowercased(self):
        assert IOC(text="Evil-C2.COM", ioc_type=IOCType.DOMAIN).normalized() == "evil-c2.com"
        assert (
            IOC(text="Billing@Secure-Pay.biz", ioc_type=IOCType.EMAIL).normalized()
            == "billing@secure-pay.biz"
        )
        assert (
            IOC(text="9E107D9D372BB6826BD81D3542A419D6", ioc_type=IOCType.HASH).normalized()
            == "9e107d9d372bb6826bd81d3542a419d6"
        )
        assert IOC(text="CVE-2014-6271", ioc_type=IOCType.CVE).normalized() == "cve-2014-6271"

    def test_trailing_punctuation_stripped_before_canonicalization(self):
        assert IOC(text="/etc/passwd.,", ioc_type=IOCType.FILEPATH).normalized() == "/etc/passwd"

    def test_defanged_network_iocs_canonicalized(self):
        assert (
            IOC(text="192[.]168[.]29[.]128", ioc_type=IOCType.IP).normalized()
            == "192.168.29.128"
        )
        assert (
            IOC(text="bad[.]site.com", ioc_type=IOCType.DOMAIN).normalized() == "bad.site.com"
        )

    def test_registry_keys_keep_case(self):
        key = "HKEY_LOCAL_MACHINE\\Software\\Run\\Updater"
        assert IOC(text=key, ioc_type=IOCType.REGISTRY).normalized() == key
