"""Unit tests for dependency tree structure, annotation and simplification."""

from __future__ import annotations

from repro.nlp.depparse import DependencyParser
from repro.nlp.ioc import protect_iocs


def _protected_tree(text: str, simplify: bool = False):
    protected = protect_iocs(text)
    tree = DependencyParser().parse(protected.text)
    tree.restore_iocs(protected.replacements)
    tree.annotate()
    if simplify:
        tree.simplify()
    return tree


class TestTreeQueries:
    def test_lowest_common_ancestor(self):
        tree = _protected_tree("The attacker used /bin/tar to read /etc/passwd.")
        tar = next(node for node in tree.nodes if node.ioc and node.ioc.text == "/bin/tar")
        passwd = next(node for node in tree.nodes if node.ioc and node.ioc.text == "/etc/passwd")
        lca = tree.lowest_common_ancestor(tar, passwd)
        assert lca.text == "used"

    def test_lca_when_one_is_ancestor(self):
        tree = _protected_tree("The process /usr/bin/gpg reading from /tmp/upload.tar.bz2 was seen.")
        gpg = next(node for node in tree.nodes if node.ioc and node.ioc.text == "/usr/bin/gpg")
        bz2 = next(node for node in tree.nodes if node.ioc and node.ioc.text == "/tmp/upload.tar.bz2")
        assert tree.lowest_common_ancestor(gpg, bz2) is gpg

    def test_path_from_ancestor(self):
        tree = _protected_tree("The attacker used /bin/tar to read /etc/passwd.")
        passwd = next(node for node in tree.nodes if node.ioc and node.ioc.text == "/etc/passwd")
        path = tree.path_from_ancestor(tree.root, passwd)
        assert path[-1] is passwd
        assert path[0].parent is tree.root

    def test_path_from_ancestor_to_self_is_empty(self):
        tree = _protected_tree("The attacker used /bin/tar.")
        assert tree.path_from_ancestor(tree.root, tree.root) == []

    def test_path_from_root(self):
        tree = _protected_tree("The attacker used /bin/tar to read /etc/passwd.")
        passwd = next(node for node in tree.nodes if node.ioc and node.ioc.text == "/etc/passwd")
        chain = tree.path_from_root(passwd)
        assert chain[0] is tree.root
        assert chain[-1] is passwd

    def test_node_at_offset(self):
        tree = _protected_tree("The attacker used /bin/tar.")
        node = tree.nodes[2]
        assert tree.node_at_offset(node.offset) is node
        assert tree.node_at_offset(10_000) is None

    def test_to_lines_renders_every_kept_node(self):
        tree = _protected_tree("The attacker used /bin/tar to read /etc/passwd.")
        lines = tree.to_lines()
        assert any("IOC:/bin/tar" in line for line in lines)
        assert any("[VERB]" in line for line in lines)


class TestSimplification:
    def test_simplification_keeps_ioc_paths(self):
        tree = _protected_tree(
            "As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd.",
            simplify=True,
        )
        ioc_texts = {node.ioc.text for node in tree.direct_ioc_nodes()}
        assert ioc_texts == {"/bin/tar", "/etc/passwd"}
        # every remaining node lies on a root→IOC/verb/pronoun path
        for node in tree.nodes:
            assert (
                node is tree.root
                or node.is_ioc()
                or node.is_candidate_verb
                or node.is_pronoun
                or node.subtree_has_ioc()
                or any(
                    descendant.is_candidate_verb or descendant.is_pronoun
                    for descendant in node.descendants()
                )
            )

    def test_simplification_drops_irrelevant_branches(self):
        tree = _protected_tree(
            "As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd.",
            simplify=True,
        )
        texts = {node.text for node in tree.nodes}
        assert "step" not in texts  # the "As a first step" branch carries no IOC

    def test_simplification_keeps_relations_extractable(self):
        full = _protected_tree("The attacker used /bin/tar to read user credentials from /etc/passwd.")
        simplified = _protected_tree(
            "The attacker used /bin/tar to read user credentials from /etc/passwd.", simplify=True
        )
        assert len(simplified.nodes) <= len(full.nodes)
        assert {node.ioc.text for node in simplified.direct_ioc_nodes()} == {
            node.ioc.text for node in full.direct_ioc_nodes()
        }

    def test_sentence_without_iocs_keeps_only_annotated_nodes(self):
        tree = _protected_tree("The campaign was highly sophisticated and quiet.", simplify=True)
        assert tree.direct_ioc_nodes() == []
        assert tree.root in tree.nodes
