"""Unit tests for IOC relation extraction and behavior graph construction."""

from __future__ import annotations

from repro.nlp.behavior_graph import BehaviorGraphBuilder
from repro.nlp.coref import CoreferenceResolver
from repro.nlp.depparse import DependencyParser
from repro.nlp.ioc import IOC, IOCType, protect_iocs
from repro.nlp.merge import IOCMerger
from repro.nlp.relation import IOCRelation, RelationExtractor
from repro.nlp.segmentation import segment_sentences


def _relations(text: str) -> set[tuple[str, str, str]]:
    protected = protect_iocs(text)
    parser = DependencyParser()
    trees = []
    for span in segment_sentences(protected.text):
        tree = parser.parse(span.text, sentence_offset=span.start)
        tree.restore_iocs(protected.replacements)
        tree.annotate()
        tree.simplify()
        trees.append(tree)
    CoreferenceResolver().resolve_block(trees)
    extractor = RelationExtractor()
    found: set[tuple[str, str, str]] = set()
    for index, tree in enumerate(trees):
        for relation in extractor.extract(tree, block_index=0, sentence_index=index):
            found.add((relation.subject.text, relation.verb, relation.obj.text))
    return found


class TestRelationExtraction:
    def test_instrument_purpose_clause(self):
        assert _relations("The attacker used /bin/tar to read user credentials from /etc/passwd.") == {
            ("/bin/tar", "read", "/etc/passwd")
        }

    def test_simple_subject_verb_prep_object(self):
        assert _relations("/usr/bin/gpg then wrote the sensitive information to /tmp/upload.") == {
            ("/usr/bin/gpg", "write", "/tmp/upload")
        }

    def test_direct_object(self):
        assert _relations("/tmp/crack read /etc/shadow.") == {("/tmp/crack", "read", "/etc/shadow")}

    def test_conjoined_verbs_share_subject(self):
        found = _relations("/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2.")
        assert found == {
            ("/bin/bzip2", "read", "/tmp/upload.tar"),
            ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
        }

    def test_pronoun_coreference_supplies_subject(self):
        found = _relations(
            "The attacker used /bin/tar to read /etc/passwd. "
            "It wrote the gathered information to a file /tmp/upload.tar."
        )
        assert ("/bin/tar", "write", "/tmp/upload.tar") in found

    def test_participial_clause(self):
        found = _relations(
            "The encryption corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2."
        )
        assert found == {("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2")}

    def test_by_using_construction(self):
        found = _relations(
            "He leaked the data back to the C2 host by using /usr/bin/curl to connect to 192.168.29.128."
        )
        assert found == {("/usr/bin/curl", "connect", "192.168.29.128")}

    def test_parenthetical_apposition(self):
        found = _relations(
            "The attacker leveraged the curl utility (/usr/bin/curl) to read the data from /tmp/upload."
        )
        assert found == {("/usr/bin/curl", "read", "/tmp/upload")}

    def test_passive_voice_agent(self):
        found = _relations("The payload /tmp/locker.elf was then executed by /bin/sh.")
        assert found == {("/bin/sh", "execute", "/tmp/locker.elf")}

    def test_two_objects_no_relation_between_them(self):
        found = _relations("/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2.")
        assert ("/tmp/upload.tar", "write", "/tmp/upload.tar.bz2") not in found
        assert ("/tmp/upload.tar.bz2", "read", "/tmp/upload.tar") not in found

    def test_sentence_without_verb_produces_nothing(self):
        assert _relations("Indicators: /bin/tar, /etc/passwd, 10.1.1.1.") == set()

    def test_sentence_with_single_ioc_produces_nothing(self):
        assert _relations("The attacker executed /tmp/crack repeatedly.") == set()

    def test_download_relation(self):
        found = _relations("/usr/bin/wget downloaded the cracker to /tmp/crack.")
        assert ("/usr/bin/wget", "download", "/tmp/crack") in found

    def test_send_relation_toward_ip(self):
        found = _relations("/usr/bin/scp sent the archive to 198.51.100.23.")
        assert found == {("/usr/bin/scp", "send", "198.51.100.23")}


class TestBehaviorGraphBuilder:
    def _relation(self, subject, verb, obj, order):
        return IOCRelation(
            subject=IOC(subject, IOCType.FILEPATH),
            verb=verb,
            obj=IOC(obj, IOCType.FILEPATH),
            order_key=order,
        )

    def test_sequence_numbers_follow_order_keys(self):
        relations = [
            self._relation("/a", "write", "/b", (0, 2, 5)),
            self._relation("/c", "read", "/d", (0, 1, 3)),
        ]
        merge = IOCMerger().merge([r.subject for r in relations] + [r.obj for r in relations])
        graph = BehaviorGraphBuilder().build(relations, merge)
        ordered = graph.edges_in_order()
        assert [(e.subject.text, e.obj.text) for e in ordered] == [("/c", "/d"), ("/a", "/b")]
        assert [e.sequence for e in ordered] == [1, 2]

    def test_duplicate_edges_collapsed(self):
        relations = [
            self._relation("/a", "read", "/b", (0, 0, 1)),
            self._relation("/a", "read", "/b", (0, 1, 1)),
        ]
        merge = IOCMerger().merge([r.subject for r in relations] + [r.obj for r in relations])
        graph = BehaviorGraphBuilder().build(relations, merge)
        assert len(graph.edges) == 1
        assert len(graph.nodes) == 2

    def test_self_loops_dropped(self):
        relations = [self._relation("/a", "read", "/a", (0, 0, 0))]
        merge = IOCMerger().merge([r.subject for r in relations] + [r.obj for r in relations])
        graph = BehaviorGraphBuilder().build(relations, merge)
        assert graph.edges == []

    def test_merged_iocs_share_node(self):
        relations = [
            IOCRelation(
                subject=IOC("/usr/bin/wget", IOCType.FILEPATH),
                verb="write",
                obj=IOC("crack.elf", IOCType.FILENAME),
                order_key=(0, 0, 0),
            ),
            IOCRelation(
                subject=IOC("/tmp/crack.elf", IOCType.FILEPATH),
                verb="read",
                obj=IOC("/etc/shadow", IOCType.FILEPATH),
                order_key=(0, 1, 0),
            ),
        ]
        merge = IOCMerger().merge([r.subject for r in relations] + [r.obj for r in relations])
        graph = BehaviorGraphBuilder().build(relations, merge)
        texts = [node.text for node in graph.nodes]
        assert texts.count("/tmp/crack.elf") == 1
        assert "crack.elf" not in texts

    def test_node_for_and_adjacent_edges(self):
        relations = [self._relation("/a", "read", "/b", (0, 0, 0))]
        merge = IOCMerger().merge([r.subject for r in relations] + [r.obj for r in relations])
        graph = BehaviorGraphBuilder().build(relations, merge)
        node = graph.node_for(IOC("/a", IOCType.FILEPATH))
        assert node is not None
        assert len(graph.adjacent_edges(node)) == 1
        assert graph.node_for(IOC("/zzz", IOCType.FILEPATH)) is None

    def test_remove_nodes_drops_connected_edges(self):
        relations = [
            self._relation("/a", "read", "/b", (0, 0, 0)),
            self._relation("/c", "read", "/d", (0, 1, 0)),
        ]
        merge = IOCMerger().merge([r.subject for r in relations] + [r.obj for r in relations])
        graph = BehaviorGraphBuilder().build(relations, merge)
        target = graph.node_for(IOC("/a", IOCType.FILEPATH))
        graph.remove_nodes([target])
        assert len(graph.edges) == 1
        assert graph.node_for(IOC("/a", IOCType.FILEPATH)) is None

    def test_summary_and_lines(self):
        relations = [self._relation("/a", "read", "/b", (0, 0, 0))]
        merge = IOCMerger().merge([r.subject for r in relations] + [r.obj for r in relations])
        graph = BehaviorGraphBuilder().build(relations, merge)
        assert graph.summary() == {"nodes": 2, "edges": 1}
        assert graph.to_lines() == ["1. /a --[read]--> /b"]
