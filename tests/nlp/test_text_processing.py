"""Unit tests for tokenisation, segmentation, POS tagging, lemmatisation and vectors."""

from __future__ import annotations

import pytest

from repro.nlp.ioc import PROTECTION_WORD
from repro.nlp.lemmatizer import Lemmatizer, lemmatize
from repro.nlp.pos import PosTagger, is_relation_verb_form
from repro.nlp.segmentation import segment_blocks, segment_sentences
from repro.nlp.tokenizer import Tokenizer, tokenize
from repro.nlp.wordvec import character_overlap, containment, cosine_similarity, vectorize


class TestTokenizer:
    def test_simple_sentence(self):
        tokens = tokenize("The attacker read the file.")
        assert [token.text for token in tokens] == ["The", "attacker", "read", "the", "file", "."]

    def test_offsets_match_source(self):
        text = "It wrote data."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_indices_sequential(self):
        tokens = tokenize("a b c")
        assert [token.index for token in tokens] == [0, 1, 2]

    def test_contraction_split(self):
        tokens = tokenize("It didn't work.")
        texts = [token.text for token in tokens]
        assert "did" in texts and "n't" in texts

    def test_punctuation_detection(self):
        tokens = tokenize("Hello, world!")
        assert tokens[1].is_punctuation()
        assert not tokens[0].is_punctuation()

    def test_numbers(self):
        tokens = tokenize("port 8080 opened")
        assert tokens[1].text == "8080"

    def test_empty_text(self):
        assert Tokenizer().tokenize("   ") == []


class TestSegmentation:
    def test_blocks_split_on_blank_lines(self):
        blocks = segment_blocks("First paragraph.\n\nSecond paragraph.")
        assert len(blocks) == 2
        assert blocks[0].text.strip() == "First paragraph."

    def test_bullet_items_become_blocks(self):
        document = "Intro line.\n- first step\n- second step"
        blocks = segment_blocks(document)
        assert len(blocks) == 3

    def test_block_offsets(self):
        document = "Alpha.\n\nBeta."
        blocks = segment_blocks(document)
        for block in blocks:
            assert document[block.start : block.end] == block.text

    def test_empty_document(self):
        assert segment_blocks("") == []
        assert segment_blocks("\n\n\n") == []

    def test_sentence_split(self):
        sentences = segment_sentences("The tool read the file. It wrote the output. Done!")
        assert len(sentences) == 3

    def test_abbreviations_do_not_split(self):
        sentences = segment_sentences("Attackers use tools, e.g. netcat, to pivot.")
        assert len(sentences) == 1

    def test_sentence_offsets(self):
        block = "One sentence here. Another one there."
        for span in segment_sentences(block):
            assert block[span.start : span.end] == span.text

    def test_protected_lowercase_start_splits(self):
        # Sentences in protected text can start with the lowercase dummy word.
        block = f"The tool wrote data. {PROTECTION_WORD} then read the result."
        assert len(segment_sentences(block)) == 2

    def test_no_terminal_punctuation(self):
        sentences = segment_sentences("a single unterminated sentence")
        assert len(sentences) == 1


class TestPosTagger:
    def _tags(self, text: str) -> list[tuple[str, str]]:
        tokens = tokenize(text)
        PosTagger().tag(tokens)
        return [(token.text, token.pos) for token in tokens]

    def test_protection_word_is_noun(self):
        tags = dict(self._tags(f"The attacker used {PROTECTION_WORD} yesterday."))
        assert tags[PROTECTION_WORD] == "NN"

    def test_relation_verbs_tagged_as_verbs(self):
        tags = dict(self._tags("It downloaded the payload and executed it."))
        assert tags["downloaded"].startswith("V")
        assert tags["executed"].startswith("V")

    def test_determiner_and_preposition(self):
        tags = dict(self._tags("The data went into the archive."))
        assert tags["The"] == "DT"
        assert tags["into"] == "IN"

    def test_pronouns(self):
        tags = dict(self._tags("It wrote the file and they read it."))
        assert tags["It"] == "PRP"
        assert tags["they"] == "PRP"

    def test_infinitive_to_plus_verb(self):
        pairs = self._tags("The attacker used the tool to read credentials.")
        tags = dict(pairs)
        assert tags["to"] == "TO"
        assert tags["read"] == "VB"

    def test_participle_as_adjective_between_det_and_noun(self):
        tags = dict(self._tags("It wrote the gathered information to disk."))
        assert tags["gathered"] == "JJ"

    def test_third_person_verb_after_subject(self):
        tags = dict(self._tags("It reads the configuration file."))
        assert tags["reads"] == "VBZ"

    def test_numbers_tagged_cd(self):
        tags = dict(self._tags("port 443 is open"))
        assert tags["443"] == "CD"

    def test_is_relation_verb_form(self):
        assert is_relation_verb_form("reads")
        assert is_relation_verb_form("wrote")
        assert is_relation_verb_form("compressing")
        assert is_relation_verb_form("exfiltrated")
        assert not is_relation_verb_form("attacker")
        assert not is_relation_verb_form("quickly")


class TestLemmatizer:
    @pytest.mark.parametrize(
        ("word", "pos", "lemma"),
        [
            ("wrote", "VBD", "write"),
            ("written", "VBN", "write"),
            ("reads", "VBZ", "read"),
            ("reading", "VBG", "read"),
            ("used", "VBD", "use"),
            ("leveraged", "VBD", "leverage"),
            ("compressed", "VBD", "compress"),
            ("connecting", "VBG", "connect"),
            ("launches", "VBZ", "launch"),
            ("copies", "VBZ", "copy"),
            ("ran", "VBD", "run"),
            ("sent", "VBD", "send"),
            ("was", "AUX", "be"),
        ],
    )
    def test_verb_lemmas(self, word, pos, lemma):
        assert lemmatize(word, pos) == lemma

    @pytest.mark.parametrize(
        ("word", "lemma"),
        [("files", "file"), ("processes", "process"), ("activities", "activity"), ("hosts", "host")],
    )
    def test_noun_lemmas(self, word, lemma):
        assert lemmatize(word, "NNS") == lemma

    def test_unknown_pos_falls_back(self):
        assert lemmatize("downloads") == "download"
        assert lemmatize("attacker") == "attacker"

    def test_lemmatizer_object(self):
        assert Lemmatizer().lemma("stole", "VBD") == "steal"


class TestWordVectors:
    def test_vector_is_normalised(self):
        vector = vectorize("/tmp/upload.tar")
        norm = sum(value * value for value in vector) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_identical_strings_have_similarity_one(self):
        assert cosine_similarity("/bin/tar", "/bin/tar") == pytest.approx(1.0)

    def test_similar_strings_more_similar_than_different(self):
        near = cosine_similarity("upload.tar", "/tmp/upload.tar")
        far = cosine_similarity("upload.tar", "/etc/passwd")
        assert near > far

    def test_empty_string_vector(self):
        assert cosine_similarity("", "abc") == pytest.approx(0.0, abs=1e-9)

    def test_character_overlap_symmetric(self):
        assert character_overlap("abcdef", "abcxyz") == pytest.approx(
            character_overlap("abcxyz", "abcdef")
        )

    def test_character_overlap_bounds(self):
        assert character_overlap("same", "same") == pytest.approx(1.0)
        assert 0.0 <= character_overlap("alpha", "omega") < 1.0

    def test_containment_of_substring(self):
        assert containment("upload.tar", "/tmp/upload.tar") >= 0.9

    def test_vectorize_deterministic(self):
        assert vectorize("curl") == vectorize("curl")
