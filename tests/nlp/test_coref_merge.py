"""Unit tests for coreference resolution and IOC merging."""

from __future__ import annotations

from repro.nlp.coref import CoreferenceResolver
from repro.nlp.depparse import DependencyParser
from repro.nlp.ioc import IOC, IOCType, protect_iocs
from repro.nlp.merge import IOCMerger, should_merge
from repro.nlp.segmentation import segment_sentences


def _block_trees(text: str):
    protected = protect_iocs(text)
    parser = DependencyParser()
    trees = []
    for span in segment_sentences(protected.text):
        tree = parser.parse(span.text, sentence_offset=span.start)
        tree.restore_iocs(protected.replacements)
        tree.annotate()
        tree.simplify()
        trees.append(tree)
    return trees


class TestCoreferenceResolver:
    def test_pronoun_resolves_to_previous_subject_side_ioc(self):
        trees = _block_trees(
            "The attacker used /bin/tar to read user credentials from /etc/passwd. "
            "It wrote the gathered information to a file /tmp/upload.tar."
        )
        links = CoreferenceResolver().resolve_block(trees)
        assert links == 1
        it_node = next(node for node in trees[1].pronoun_nodes() if node.text == "It")
        assert it_node.coref is not None
        assert it_node.coref.ioc.text == "/bin/tar"

    def test_animate_pronouns_not_resolved(self):
        trees = _block_trees(
            "The attacker used /bin/tar to read /etc/passwd. "
            "He leaked the data to the C2 host."
        )
        CoreferenceResolver().resolve_block(trees)
        he_nodes = [node for tree in trees for node in tree.nodes if node.text == "He"]
        assert all(node.coref is None for node in he_nodes)

    def test_pronoun_without_antecedent_unresolved(self):
        trees = _block_trees("It downloaded the second stage payload quickly.")
        links = CoreferenceResolver().resolve_block(trees)
        assert links == 0

    def test_nominal_resolution_disabled_by_default(self):
        trees = _block_trees(
            "The attacker wrote data to /tmp/upload.tar. "
            "Then the attacker compressed the tar file."
        )
        CoreferenceResolver().resolve_block(trees)
        nominal = [
            node
            for tree in trees
            for node in tree.pronoun_nodes()
            if node.pos in ("NN", "NNS") and node.text == "file"
        ]
        assert all(node.coref is None for node in nominal)

    def test_nominal_resolution_when_enabled(self):
        trees = _block_trees(
            "The attacker wrote data to /tmp/upload.tar. "
            "Then the attacker compressed the tar file."
        )
        links = CoreferenceResolver(resolve_nominal=True).resolve_block(trees)
        assert links >= 1
        file_nodes = [
            node
            for tree in trees
            for node in tree.nodes
            if node.text == "file" and node.coref is not None
        ]
        assert file_nodes and file_nodes[0].coref.ioc.text == "/tmp/upload.tar"

    def test_coref_counts_as_ioc_node(self):
        trees = _block_trees(
            "The attacker used /bin/tar to read /etc/passwd. "
            "It wrote the data to /tmp/upload.tar."
        )
        CoreferenceResolver().resolve_block(trees)
        second_tree_iocs = {node.effective_ioc().text for node in trees[1].ioc_nodes()}
        assert "/bin/tar" in second_tree_iocs
        assert "/tmp/upload.tar" in second_tree_iocs


class TestShouldMerge:
    def test_exact_duplicates_merge(self):
        a = IOC("/tmp/upload.tar", IOCType.FILEPATH)
        b = IOC("/tmp/upload.tar", IOCType.FILEPATH)
        assert should_merge(a, b)

    def test_filename_merges_with_matching_path(self):
        name = IOC("upload.tar", IOCType.FILENAME)
        path = IOC("/tmp/upload.tar", IOCType.FILEPATH)
        assert should_merge(name, path)

    def test_different_extensions_do_not_merge(self):
        a = IOC("/tmp/upload.tar", IOCType.FILEPATH)
        b = IOC("/tmp/upload.tar.bz2", IOCType.FILEPATH)
        c = IOC("/tmp/upload", IOCType.FILEPATH)
        assert not should_merge(a, b)
        assert not should_merge(a, c)
        assert not should_merge(b, c)

    def test_different_directories_same_basename_do_not_merge_blindly(self):
        a = IOC("/tmp/payload.bin", IOCType.FILEPATH)
        b = IOC("/var/spool/payload.bin", IOCType.FILEPATH)
        # Same basename but materially different path text: merging is allowed
        # only when overall similarity is very high, which it is not here.
        assert not should_merge(a, b)

    def test_ip_with_cidr_suffix_merges(self):
        a = IOC("192.168.29.128", IOCType.IP)
        b = IOC("192.168.29.128/32", IOCType.IP)
        assert should_merge(a, b)

    def test_distinct_ips_do_not_merge(self):
        assert not should_merge(IOC("10.0.0.1", IOCType.IP), IOC("10.0.0.2", IOCType.IP))

    def test_cross_type_non_path_never_merges(self):
        assert not should_merge(IOC("1.2.3.4", IOCType.IP), IOC("evil.com", IOCType.DOMAIN))


class TestIOCMerger:
    def test_merge_groups_and_canonical(self):
        iocs = [
            IOC("/tmp/upload.tar", IOCType.FILEPATH),
            IOC("upload.tar", IOCType.FILENAME),
            IOC("/etc/passwd", IOCType.FILEPATH),
        ]
        result = IOCMerger().merge(iocs)
        assert result.resolve(iocs[1]).text == "/tmp/upload.tar"
        assert result.resolve(iocs[2]).text == "/etc/passwd"
        assert len(result.canonical_iocs()) == 2

    def test_duplicates_resolve_to_same_canonical(self):
        iocs = [
            IOC("/bin/tar", IOCType.FILEPATH),
            IOC("/bin/tar", IOCType.FILEPATH),
        ]
        result = IOCMerger().merge(iocs)
        assert result.resolve(iocs[0]) == result.resolve(iocs[1])
        assert len(result.canonical_iocs()) == 1

    def test_unmerged_ioc_resolves_to_itself(self):
        ioc = IOC("/etc/shadow", IOCType.FILEPATH)
        result = IOCMerger().merge([ioc])
        assert result.resolve(ioc) == ioc

    def test_figure2_iocs_stay_distinct(self):
        texts = [
            "/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
            "/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload", "/usr/bin/curl",
        ]
        iocs = [IOC(text, IOCType.FILEPATH) for text in texts]
        result = IOCMerger().merge(iocs)
        assert len(result.canonical_iocs()) == len(texts)

    def test_empty_input(self):
        result = IOCMerger().merge([])
        assert result.canonical_iocs() == []
