"""Tests for the threatraptor command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.data import FIGURE2_REPORT


@pytest.fixture()
def audit_log(tmp_path):
    path = tmp_path / "audit.log"
    exit_code = main(
        ["simulate", str(path), "--seed", "3", "--scale", "0.3", "--attack", "figure2-data-leakage"]
    )
    assert exit_code == 0
    return path


@pytest.fixture()
def report_file(tmp_path):
    path = tmp_path / "report.txt"
    path.write_text(FIGURE2_REPORT.text, encoding="utf-8")
    return path


class TestSimulate:
    def test_simulate_writes_log(self, audit_log, capsys):
        assert audit_log.exists()
        assert audit_log.stat().st_size > 0

    def test_simulate_default_attacks(self, tmp_path, capsys):
        path = tmp_path / "demo.log"
        assert main(["simulate", str(path), "--scale", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "malicious=" in output


class TestExtractAndSynthesize:
    def test_extract_prints_graph(self, report_file, capsys):
        assert main(["extract", str(report_file)]) == 0
        output = capsys.readouterr().out
        assert "/bin/tar --[read]--> /etc/passwd" in output

    def test_synthesize_prints_tbql(self, report_file, capsys):
        assert main(["synthesize", str(report_file)]) == 0
        output = capsys.readouterr().out
        assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1' in output
        assert "return distinct" in output

    def test_synthesize_path_patterns(self, report_file, capsys):
        assert main(["synthesize", str(report_file), "--path-patterns"]) == 0
        assert "~>" in capsys.readouterr().out

    def test_missing_report_file_is_error(self, capsys):
        assert main(["extract", "/nonexistent/report.txt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestHuntAndQuery:
    def test_hunt_finds_attack(self, report_file, audit_log, capsys):
        assert main(["hunt", str(report_file), str(audit_log)]) == 0
        output = capsys.readouterr().out
        assert "Synthesized TBQL query" in output
        assert "192.168.29.128" in output
        assert "matched events=8" in output

    def test_hunt_unoptimized_backend_graph(self, report_file, audit_log, capsys):
        assert main(["hunt", str(report_file), str(audit_log), "--backend", "graph", "--no-optimize"]) == 0
        assert "matched events=8" in capsys.readouterr().out

    def test_query_command(self, tmp_path, audit_log, capsys):
        query_file = tmp_path / "query.tbql"
        query_file.write_text(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return p, f\n',
            encoding="utf-8",
        )
        assert main(["query", str(query_file), str(audit_log)]) == 0
        output = capsys.readouterr().out
        assert "/etc/passwd" in output

    def test_query_syntax_error_reports_cleanly(self, tmp_path, audit_log, capsys):
        query_file = tmp_path / "bad.tbql"
        query_file.write_text("this is not tbql", encoding="utf-8")
        assert main(["query", str(query_file), str(audit_log)]) == 1
        assert "error:" in capsys.readouterr().err
