"""Tests for the threatraptor command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.data import FIGURE2_REPORT


@pytest.fixture()
def audit_log(tmp_path):
    path = tmp_path / "audit.log"
    exit_code = main(
        ["simulate", str(path), "--seed", "3", "--scale", "0.3", "--attack", "figure2-data-leakage"]
    )
    assert exit_code == 0
    return path


@pytest.fixture()
def report_file(tmp_path):
    path = tmp_path / "report.txt"
    path.write_text(FIGURE2_REPORT.text, encoding="utf-8")
    return path


class TestSimulate:
    def test_simulate_writes_log(self, audit_log, capsys):
        assert audit_log.exists()
        assert audit_log.stat().st_size > 0

    def test_simulate_default_attacks(self, tmp_path, capsys):
        path = tmp_path / "demo.log"
        assert main(["simulate", str(path), "--scale", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "malicious=" in output


class TestExtractAndSynthesize:
    def test_extract_prints_graph(self, report_file, capsys):
        assert main(["extract", str(report_file)]) == 0
        output = capsys.readouterr().out
        assert "/bin/tar --[read]--> /etc/passwd" in output

    def test_synthesize_prints_tbql(self, report_file, capsys):
        assert main(["synthesize", str(report_file)]) == 0
        output = capsys.readouterr().out
        assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1' in output
        assert "return distinct" in output

    def test_synthesize_path_patterns(self, report_file, capsys):
        assert main(["synthesize", str(report_file), "--path-patterns"]) == 0
        assert "~>" in capsys.readouterr().out

    def test_missing_report_file_is_error(self, capsys):
        assert main(["extract", "/nonexistent/report.txt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestHuntAndQuery:
    def test_hunt_finds_attack(self, report_file, audit_log, capsys):
        assert main(["hunt", str(report_file), str(audit_log)]) == 0
        output = capsys.readouterr().out
        assert "Synthesized TBQL query" in output
        assert "192.168.29.128" in output
        assert "matched events=8" in output

    def test_hunt_unoptimized_backend_graph(self, report_file, audit_log, capsys):
        assert main(["hunt", str(report_file), str(audit_log), "--backend", "graph", "--no-optimize"]) == 0
        assert "matched events=8" in capsys.readouterr().out

    def test_query_command(self, tmp_path, audit_log, capsys):
        query_file = tmp_path / "query.tbql"
        query_file.write_text(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return p, f\n',
            encoding="utf-8",
        )
        assert main(["query", str(query_file), str(audit_log)]) == 0
        output = capsys.readouterr().out
        assert "/etc/passwd" in output

    def test_query_syntax_error_reports_cleanly(self, tmp_path, audit_log, capsys):
        query_file = tmp_path / "bad.tbql"
        query_file.write_text("this is not tbql", encoding="utf-8")
        assert main(["query", str(query_file), str(audit_log)]) == 1
        assert "error:" in capsys.readouterr().err


class TestSimulateCampaign:
    def test_campaign_writes_log_and_ground_truth(self, tmp_path, capsys):
        import json

        log = tmp_path / "campaign.log"
        truth = tmp_path / "truth.json"
        assert main(
            ["simulate", str(log), "--campaign", "--seed", "21", "--ground-truth", str(truth)]
        ) == 0
        output = capsys.readouterr().out
        assert "campaign campaign-21" in output
        assert log.stat().st_size > 0
        payload = json.loads(truth.read_text(encoding="utf-8"))
        assert payload["name"] == "campaign-21"
        assert payload["event_ids"]
        assert {hunt["name"] for hunt in payload["hunts"]} == {"staging", "exfiltration"}
        for hunt in payload["hunts"]:
            assert "return distinct" in hunt["tbql"]
            assert set(hunt["expected_event_ids"]) <= set(payload["event_ids"])

    def test_campaign_log_is_huntable(self, tmp_path, capsys):
        import json

        log = tmp_path / "campaign.log"
        truth = tmp_path / "truth.json"
        assert main(
            ["simulate", str(log), "--campaign", "--seed", "33", "--ground-truth", str(truth)]
        ) == 0
        payload = json.loads(truth.read_text(encoding="utf-8"))
        query_file = tmp_path / "hunt.tbql"
        query_file.write_text(payload["hunts"][1]["tbql"], encoding="utf-8")
        capsys.readouterr()
        assert main(["query", str(query_file), str(log)]) == 0
        expected = len(payload["hunts"][1]["expected_event_ids"])
        assert f"{expected} matched events" in capsys.readouterr().out

    def test_ground_truth_without_campaign_is_error(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path / "x.log"), "--ground-truth", "gt.json"]) == 2
        assert "--ground-truth requires --campaign" in capsys.readouterr().err

    def test_campaign_rejects_attack_selection(self, tmp_path, capsys):
        assert (
            main(
                [
                    "simulate",
                    str(tmp_path / "x.log"),
                    "--campaign",
                    "--attack",
                    "figure2-data-leakage",
                ]
            )
            == 2
        )
        assert "--attack cannot be combined" in capsys.readouterr().err


class TestErrorPaths:
    def test_unknown_subcommand_exits_nonzero_with_stderr(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_no_subcommand_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_missing_trace_file_is_error(self, report_file, capsys):
        assert main(["hunt", str(report_file), "/nonexistent/audit.log"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_query_file_is_error(self, audit_log, capsys):
        assert main(["query", "/nonexistent/query.tbql", str(audit_log)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_tbql_from_stdin_is_error(self, audit_log, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("proc p read read read"))
        assert main(["query", "-", str(audit_log)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_watch_missing_report_is_error(self, audit_log, capsys):
        assert main(["watch", "/nonexistent/report.txt", str(audit_log)]) == 1
        assert "error:" in capsys.readouterr().err


class TestLint:
    CLEAN = 'proc p["%sh%"] read file f["/etc/%"] as e1 return p, f\n'
    BAD = 'proc p["x"] read file f[id > 100 and id < 10] as e1 return p, f\n'
    WARN_ONLY = 'proc p["x"] not read file f["y"] as e1 return p, f\n'

    @pytest.fixture()
    def query_file(self, tmp_path):
        def write(name, text):
            path = tmp_path / name
            path.write_text(text, encoding="utf-8")
            return path

        return write

    def test_clean_file_exits_zero(self, query_file, capsys):
        path = query_file("clean.tbql", self.CLEAN)
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_diagnostics_exit_nonzero(self, query_file, capsys):
        path = query_file("bad.tbql", self.BAD)
        assert main(["lint", str(path)]) == 1
        output = capsys.readouterr().out
        assert "error[TR101]" in output
        assert f"{path}:1:" in output

    def test_warnings_alone_exit_zero(self, query_file, capsys):
        path = query_file("warn.tbql", self.WARN_ONLY)
        assert main(["lint", str(path)]) == 0
        assert "warning[TR402]" in capsys.readouterr().out

    def test_multiple_files_worst_exit_wins(self, query_file, capsys):
        good = query_file("clean.tbql", self.CLEAN)
        bad = query_file("bad.tbql", self.BAD)
        assert main(["lint", str(good), str(bad)]) == 1
        output = capsys.readouterr().out
        assert "clean" in output
        assert "TR101" in output

    def test_unparseable_file_exits_nonzero(self, query_file, capsys):
        path = query_file("broken.tbql", "proc p read blob b as e1 return p\n")
        assert main(["lint", str(path)]) == 1
        assert "error" in capsys.readouterr().out

    def test_json_format(self, query_file, capsys):
        import json

        path = query_file("bad.tbql", self.BAD)
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["errors"] == 1
        assert payload[0]["diagnostics"][0]["rule"] == "TR101"

    def test_stdin_input(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self.CLEAN))
        assert main(["lint", "-"]) == 0
        assert "<stdin>: clean" in capsys.readouterr().out

    def test_graph_backend_promotes_negation_to_error(self, query_file, capsys):
        path = query_file("warn.tbql", self.WARN_ONLY)
        assert main(["lint", "--backend", "graph", str(path)]) == 1
        assert "error[TR402]" in capsys.readouterr().out

    def test_log_feeds_cost_statistics(self, query_file, audit_log, capsys):
        path = query_file("scan.tbql", "proc p read file f as e1 return p, f\n")
        # The default TR304 threshold is far above the small simulated log, so
        # the lint stays warning-free; the command must still load the log and
        # exit cleanly.
        assert main(["lint", "--log", str(audit_log), str(path)]) == 0
