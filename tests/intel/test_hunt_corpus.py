"""Tests for corpus hunting: dedup, provenance, incremental registration."""

from __future__ import annotations

import pytest

from repro.auditing.workload.attacks import DataLeakageAttack, PasswordCrackingAttack
from repro.auditing.workload.generator import HostSimulator
from repro.core.pipeline import ThreatRaptor
from repro.data.osctireports import PHISHING_INFRASTRUCTURE_REPORT, corpus_variants
from repro.intel.corpus import ReportCorpus
from repro.streaming.alerts import ListSink
from repro.streaming.source import ReplaySource


@pytest.fixture(scope="module")
def overlapping_corpus():
    """>= 20 overlapping reports plus one unsynthesizable report."""
    corpus = ReportCorpus(corpus_variants(22, seed=13))
    corpus.add(PHISHING_INFRASTRUCTURE_REPORT)
    return corpus


@pytest.fixture(scope="module")
def attack_simulation():
    return (
        HostSimulator(seed=5)
        .add_default_benign()
        .add_attack(PasswordCrackingAttack())
        .add_attack(DataLeakageAttack())
        .run()
    )


class TestHuntCorpusDedup:
    def test_registers_strictly_fewer_hunts_than_reports(self, overlapping_corpus):
        raptor = ThreatRaptor()
        result = raptor.hunt_corpus(overlapping_corpus)
        assert len(overlapping_corpus) >= 20
        hunted = len(result.hunted_report_ids)
        assert hunted >= 20
        assert len(result.hunts) < hunted
        # One hunt per distinct base report (five auditable bases).
        assert len(result.hunts) == 5
        assert len(result.service.hunts) == 5

    def test_every_variant_maps_to_its_base_group(self, overlapping_corpus):
        raptor = ThreatRaptor()
        result = raptor.hunt_corpus(overlapping_corpus)
        for hunt in result.hunts:
            bases = {report_id.rsplit("-v", 1)[0] for report_id in hunt.report_ids}
            assert len(bases) == 1

    def test_unsynthesizable_report_is_skipped_not_fatal(self, overlapping_corpus):
        raptor = ThreatRaptor()
        result = raptor.hunt_corpus(overlapping_corpus)
        assert "phishing-infrastructure" in result.skipped
        assert "synthesis failed" in result.skipped["phishing-infrastructure"]

    def test_summary_shape(self, overlapping_corpus):
        raptor = ThreatRaptor()
        summary = raptor.hunt_corpus(overlapping_corpus).summary()
        assert summary["reports"] == len(overlapping_corpus)
        assert summary["hunted_reports"] == 22
        assert summary["skipped_reports"] == 1
        assert summary["hunts"] == 5
        assert 0.0 < summary["dedup_ratio"] < 1.0

    def test_parallel_registration_matches_serial(self, overlapping_corpus):
        serial = ThreatRaptor().hunt_corpus(overlapping_corpus, workers=1)
        parallel = ThreatRaptor().hunt_corpus(overlapping_corpus, workers=2)
        serial_groups = {h.canonical_key: set(h.report_ids) for h in serial.hunts}
        parallel_groups = {h.canonical_key: set(h.report_ids) for h in parallel.hunts}
        assert serial_groups == parallel_groups


class TestHuntCorpusIncremental:
    def test_second_pass_reuses_existing_hunts(self):
        raptor = ThreatRaptor()
        first = raptor.hunt_corpus(corpus_variants(10, seed=13))
        service = first.service
        second = raptor.hunt_corpus(corpus_variants(10, seed=99), service=service)
        assert all(not hunt.newly_registered for hunt in second.hunts)
        assert second.summary()["hunts_reused"] == len(second.hunts)
        # The hunt set did not grow; provenance did.
        assert len(service.hunts) == len(first.hunts)
        for standing in service.hunts:
            assert len(standing.provenance) >= 2

    def test_disjoint_second_pass_registers_new_hunts(self):
        raptor = ThreatRaptor()
        first = raptor.hunt_corpus(corpus_variants(5, seed=13))
        custom = ReportCorpus(
            [("custom", "The attacker used /usr/bin/nc to read /etc/hostname.")]
        )
        second = raptor.hunt_corpus(custom, service=first.service)
        assert len(second.hunts) == 1
        assert second.hunts[0].newly_registered
        assert len(first.service.hunts) == len(first.hunts) + 1


class TestHuntCorpusAlerts:
    def test_alerts_carry_originating_report_ids(self, attack_simulation):
        raptor = ThreatRaptor()
        sink = ListSink()
        result = raptor.hunt_corpus(corpus_variants(20, seed=13), sinks=(sink,))
        alerts = result.service.run(ReplaySource(attack_simulation))
        assert alerts
        hunts_by_name = {hunt.name: hunt for hunt in result.hunts}
        for alert in alerts:
            assert alert.reports
            assert set(alert.reports) == set(hunts_by_name[alert.hunt].report_ids)
        # Sinks received the same provenance-carrying alerts.
        assert sink.alerts == alerts

    def test_alert_to_dict_includes_reports(self, attack_simulation):
        raptor = ThreatRaptor()
        result = raptor.hunt_corpus(corpus_variants(8, seed=13))
        alerts = result.service.run(ReplaySource(attack_simulation))
        assert alerts
        payload = alerts[0].to_dict()
        assert payload["reports"] == list(alerts[0].reports)
        assert "reports=" in alerts[0].describe()
