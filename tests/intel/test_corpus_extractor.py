"""Tests for corpus-scale extraction (worker pool, dedup cache, isolation)."""

from __future__ import annotations

import pytest

from repro.data.osctireports import FIGURE2_REPORT, PASSWORD_CRACKING_REPORT
from repro.intel.corpus import ReportCorpus
from repro.intel.extractor import (
    DEFAULT_FLAGS,
    CorpusExtractor,
    shared_extractor,
)


def _edge_sets(extraction):
    """Comparable behavior-graph shape per report id."""
    shapes = {}
    for report_id, result in extraction.results():
        shapes[report_id] = {
            (edge.subject.ioc.normalized(), edge.verb, edge.obj.ioc.normalized())
            for edge in result.graph.edges
        }
    return shapes


@pytest.fixture(scope="module")
def small_corpus():
    corpus = ReportCorpus()
    corpus.add(FIGURE2_REPORT)
    corpus.add(PASSWORD_CRACKING_REPORT)
    # A byte-identical duplicate, as republished feeds produce.
    corpus.add_text("figure2-duplicate", FIGURE2_REPORT.text)
    return corpus


class TestCorpusExtractor:
    def test_serial_extracts_every_report(self, small_corpus):
        extraction = CorpusExtractor(workers=1).extract_corpus(small_corpus)
        assert len(extraction.extractions) == len(small_corpus)
        assert not extraction.failures()
        assert extraction.reports_per_second > 0

    def test_duplicate_texts_share_one_extraction(self, small_corpus):
        extraction = CorpusExtractor(workers=1).extract_corpus(small_corpus)
        assert extraction.cache_hits == 1
        by_id = extraction.by_id()
        duplicate = by_id["figure2-duplicate"]
        assert duplicate.from_cache
        assert duplicate.result is by_id["figure2-data-leakage"].result

    def test_dedup_can_be_disabled(self, small_corpus):
        extraction = CorpusExtractor(workers=1, dedup_texts=False).extract_corpus(small_corpus)
        assert extraction.cache_hits == 0
        by_id = extraction.by_id()
        assert by_id["figure2-duplicate"].result is not by_id["figure2-data-leakage"].result

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_parallel_matches_serial(self, small_corpus, executor):
        serial = CorpusExtractor(workers=1).extract_corpus(small_corpus)
        parallel = CorpusExtractor(workers=2, executor=executor).extract_corpus(small_corpus)
        assert _edge_sets(parallel) == _edge_sets(serial)
        assert not parallel.failures()

    def test_trees_dropped_by_default_kept_on_request(self):
        corpus = ReportCorpus([FIGURE2_REPORT])
        slim = CorpusExtractor(workers=1).extract_corpus(corpus)
        assert slim.by_id()["figure2-data-leakage"].result.trees == []
        full = CorpusExtractor(workers=1, keep_trees=True).extract_corpus(corpus)
        assert full.by_id()["figure2-data-leakage"].result.trees

    def test_failure_is_isolated_per_report(self, monkeypatch):
        import repro.intel.extractor as extractor_module

        original = extractor_module._extract_text

        def explode_on_marker(flags, text, keep_trees):
            if "EXPLODE" in text:
                raise RuntimeError("boom")
            return original(flags, text, keep_trees)

        monkeypatch.setattr(extractor_module, "_extract_text", explode_on_marker)
        corpus = ReportCorpus([FIGURE2_REPORT, ("bad", "EXPLODE")])
        extraction = CorpusExtractor(workers=1).extract_corpus(corpus)
        assert extraction.failures() == {"bad": "RuntimeError: boom"}
        assert extraction.by_id()["figure2-data-leakage"].ok

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            CorpusExtractor(workers=0)
        with pytest.raises(ValueError):
            CorpusExtractor(executor="gpu")

    def test_shared_extractor_is_memoized(self):
        assert shared_extractor(DEFAULT_FLAGS) is shared_extractor(DEFAULT_FLAGS)
        assert shared_extractor(DEFAULT_FLAGS) is not shared_extractor((True, True, True, True))
