"""Tests for OSCTI report corpus loading."""

from __future__ import annotations

import json

import pytest

from repro.data.osctireports import (
    ALL_REPORTS,
    FIGURE2_REPORT,
    auditable_reports,
    corpus_variants,
)
from repro.intel.corpus import CorpusReport, ReportCorpus


class TestReportCorpus:
    def test_bundled_contains_all_reports(self):
        corpus = ReportCorpus.bundled()
        assert len(corpus) == len(ALL_REPORTS)
        assert "figure2-data-leakage" in corpus

    def test_bundled_auditable_only(self):
        corpus = ReportCorpus.bundled(auditable_only=True)
        assert len(corpus) == len(auditable_reports())
        assert "phishing-infrastructure" not in corpus

    def test_duplicate_id_rejected(self):
        corpus = ReportCorpus()
        corpus.add_text("r1", "text one")
        with pytest.raises(ValueError, match="duplicate"):
            corpus.add_text("r1", "text two")

    def test_coerce_passthrough_and_iterables(self):
        corpus = ReportCorpus.bundled()
        assert ReportCorpus.coerce(corpus) is corpus
        coerced = ReportCorpus.coerce([FIGURE2_REPORT, ("manual", "some text")])
        assert coerced.get("figure2-data-leakage").source == "bundled"
        assert coerced.get("manual").text == "some text"

    def test_coerce_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            ReportCorpus.coerce([42])

    def test_from_directory(self, tmp_path):
        (tmp_path / "alpha.txt").write_text("alpha report", encoding="utf-8")
        (tmp_path / "beta.txt").write_text("beta report", encoding="utf-8")
        (tmp_path / "ignored.md").write_text("not a report", encoding="utf-8")
        corpus = ReportCorpus.from_directory(tmp_path)
        assert corpus.report_ids() == ["alpha", "beta"]
        assert corpus.get("alpha").text == "alpha report"
        assert str(tmp_path / "alpha.txt") == corpus.get("alpha").source

    def test_from_directory_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ReportCorpus.from_directory(tmp_path / "nope")

    def test_from_jsonl(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        lines = [
            {"id": "a", "text": "first", "title": "A", "source": "feed-1"},
            {"id": "b", "text": "second"},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines), encoding="utf-8")
        corpus = ReportCorpus.from_jsonl(path)
        assert corpus.report_ids() == ["a", "b"]
        assert corpus.get("a").title == "A"
        assert corpus.get("b").source == str(path)

    def test_from_jsonl_missing_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"id": "a"}), encoding="utf-8")
        with pytest.raises(ValueError, match="'id' and 'text'"):
            ReportCorpus.from_jsonl(path)

    def test_variants_constructor(self):
        corpus = ReportCorpus.variants(12, seed=4)
        assert len(corpus) == 12
        assert all(isinstance(report, CorpusReport) for report in corpus)


class TestCorpusVariants:
    def test_deterministic_for_seed(self):
        first = corpus_variants(10, seed=21)
        second = corpus_variants(10, seed=21)
        assert [r.text for r in first] == [r.text for r in second]

    def test_cycles_through_bases(self):
        variants = corpus_variants(12, seed=3)
        bases = {v.name.rsplit("-v", 1)[0] for v in variants}
        assert bases == {r.name for r in auditable_reports()}

    def test_ground_truth_carried_over(self):
        variants = corpus_variants(5, seed=3)
        for variant in variants:
            base_name = variant.name.rsplit("-v", 1)[0]
            base = next(r for r in auditable_reports() if r.name == base_name)
            assert variant.ioc_ground_truth == base.ioc_ground_truth
            assert variant.relation_ground_truth == base.relation_ground_truth

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            corpus_variants(-1)
