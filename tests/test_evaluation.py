"""Unit tests for the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.data import FIGURE2_REPORT
from repro.evaluation import (
    PrecisionRecall,
    score_hunting,
    score_ioc_extraction,
    score_relation_extraction,
    score_sets,
)
from repro.nlp.extractor import ThreatBehaviorExtractor


class TestPrecisionRecall:
    def test_perfect(self):
        score = PrecisionRecall(true_positives=5, false_positives=0, false_negatives=0)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_zero_denominators(self):
        score = PrecisionRecall(true_positives=0, false_positives=0, false_negatives=0)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_partial(self):
        score = PrecisionRecall(true_positives=3, false_positives=1, false_negatives=3)
        assert score.precision == pytest.approx(0.75)
        assert score.recall == pytest.approx(0.5)
        assert score.f1 == pytest.approx(0.6)

    def test_as_dict_rounding(self):
        score = PrecisionRecall(true_positives=1, false_positives=2, false_negatives=0)
        assert score.as_dict() == {"precision": 0.3333, "recall": 1.0, "f1": 0.5}

    def test_score_sets(self):
        score = score_sets({"a", "b", "c"}, {"b", "c", "d"})
        assert score.true_positives == 2
        assert score.false_positives == 1
        assert score.false_negatives == 1

    def test_f1_matches_harmonic_mean_when_defined(self):
        for tp, fp, fn in [(1, 0, 0), (3, 1, 3), (2, 5, 0), (1, 0, 9), (7, 3, 2)]:
            score = PrecisionRecall(tp, fp, fn)
            harmonic = (
                2 * score.precision * score.recall / (score.precision + score.recall)
            )
            assert score.f1 == pytest.approx(harmonic)


class TestEmptySetCorners:
    """Empty-prediction / empty-ground-truth corners never divide by zero."""

    def test_both_empty(self):
        score = score_sets([], [])
        assert (score.precision, score.recall, score.f1) == (0.0, 0.0, 0.0)
        assert score.as_dict() == {"precision": 0.0, "recall": 0.0, "f1": 0.0}

    def test_empty_ground_truth_with_predictions(self):
        score = score_sets(["a", "b"], [])
        assert score.false_positives == 2
        assert (score.precision, score.recall, score.f1) == (0.0, 0.0, 0.0)

    def test_empty_predictions_with_ground_truth(self):
        score = score_sets([], ["a", "b", "c"])
        assert score.false_negatives == 3
        assert (score.precision, score.recall, score.f1) == (0.0, 0.0, 0.0)

    def test_disjoint_sets_have_zero_f1(self):
        # Precision and recall are both zero with non-zero denominators; the
        # harmonic-mean formula would divide 0 by 0 without the guard.
        score = score_sets(["a"], ["b"])
        assert (score.precision, score.recall, score.f1) == (0.0, 0.0, 0.0)

    def test_score_hunting_empty_corners(self):
        assert score_hunting([], []).as_dict() == {
            "precision": 0.0,
            "recall": 0.0,
            "f1": 0.0,
        }
        assert score_hunting([1, 2], []).f1 == 0.0
        assert score_hunting([], [1, 2]).f1 == 0.0
        perfect = score_hunting([1, 2], [2, 1])
        assert perfect.as_dict() == {"precision": 1.0, "recall": 1.0, "f1": 1.0}


class TestExtractionScoring:
    def test_figure2_scores_perfect(self):
        result = ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text)
        assert score_ioc_extraction(result, FIGURE2_REPORT).recall == 1.0
        relation_score = score_relation_extraction(result, FIGURE2_REPORT)
        assert relation_score.precision == 1.0 and relation_score.recall == 1.0

    def test_empty_extraction_scores_zero_recall(self):
        result = ThreatBehaviorExtractor().extract("Nothing to see here.")
        score = score_relation_extraction(result, FIGURE2_REPORT)
        assert score.recall == 0.0


class TestHuntingScoring:
    def test_hunting_precision_recall(self):
        score = score_hunting({1, 2, 3, 99}, {1, 2, 3, 4})
        assert score.true_positives == 3
        assert score.false_positives == 1
        assert score.false_negatives == 1

    def test_empty_match_set(self):
        score = score_hunting(set(), {1, 2})
        assert score.recall == 0.0
        assert score.precision == 0.0
