"""End-to-end integration tests: the paper's demo scenario (Section III).

Two multi-step attacks are injected into a simulated host that keeps running
its benign workloads; ThreatRaptor hunts each attack from its OSCTI-style
description, and the matched audit records are scored against the injected
ground truth.
"""

from __future__ import annotations

import pytest

from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.data import report_by_name
from repro.evaluation import score_hunting


@pytest.fixture(scope="module")
def demo_raptor(demo_simulation):
    raptor = ThreatRaptor()
    raptor.load_trace(demo_simulation.trace)
    return raptor


class TestDemoAttackHunting:
    def test_password_cracking_hunt_recovers_key_steps(self, demo_raptor, demo_simulation):
        report = demo_raptor.hunt(report_by_name("password-cracking").text)
        truth = demo_simulation.ground_truth("password-cracking")
        matched = report.result.all_matched_event_ids()
        assert matched, "the hunt returned no audit records"
        score = score_hunting(matched, truth.event_ids)
        # Every matched record must be part of the injected attack (no benign
        # false positives), and the description-covered steps must be found.
        assert score.precision == 1.0
        assert score.recall >= 0.3

    def test_data_leakage_hunt_recovers_exfil_chain(self, demo_raptor, demo_simulation):
        report = demo_raptor.hunt(report_by_name("data-leakage").text)
        truth = demo_simulation.ground_truth("data-leakage")
        matched = report.result.all_matched_event_ids()
        assert matched
        score = score_hunting(matched, truth.event_ids)
        assert score.precision == 1.0
        assert score.recall >= 0.2

    def test_hunts_do_not_match_benign_backup_job(self, demo_raptor, demo_simulation):
        """The benign backup job also runs tar→gpg→curl, but toward the backup
        server; the synthesized query's IOC filters must exclude it."""
        report = demo_raptor.hunt(report_by_name("data-leakage").text)
        benign_ids = {event.event_id for event in demo_simulation.trace.benign_events()}
        assert not (report.result.all_matched_event_ids() & benign_ids)

    def test_queries_differ_across_attacks(self, demo_raptor):
        cracking = demo_raptor.hunt(report_by_name("password-cracking").text)
        leakage = demo_raptor.hunt(report_by_name("data-leakage").text)
        assert cracking.query_text != leakage.query_text
        assert "/etc/shadow" in cracking.query_text
        assert "/tmp/upload.tar" in leakage.query_text

    def test_results_stable_across_backends(self, demo_simulation):
        rows = {}
        for backend in ("relational", "graph"):
            raptor = ThreatRaptor(ThreatRaptorConfig(execution_backend=backend))
            raptor.load_trace(demo_simulation.trace)
            rows[backend] = set(raptor.hunt(report_by_name("password-cracking").text).result.rows)
        assert rows["relational"] == rows["graph"]

    def test_results_stable_with_and_without_optimization(self, demo_simulation):
        rows = {}
        for optimize in (True, False):
            raptor = ThreatRaptor(ThreatRaptorConfig(optimize_execution=optimize))
            raptor.load_trace(demo_simulation.trace)
            rows[optimize] = set(raptor.hunt(report_by_name("data-leakage").text).result.rows)
        assert rows[True] == rows[False]

    def test_reduction_does_not_change_hunt_outcome(self, demo_simulation):
        rows = {}
        for reduce_flag in (True, False):
            raptor = ThreatRaptor(ThreatRaptorConfig(apply_reduction=reduce_flag))
            raptor.load_trace(demo_simulation.trace)
            rows[reduce_flag] = set(
                raptor.hunt(report_by_name("password-cracking").text).result.rows
            )
        assert rows[True] == rows[False]
