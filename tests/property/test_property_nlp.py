"""Property-based tests for the NLP building blocks."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.ioc import IOC, IOCType, PROTECTION_WORD, protect_iocs, recognize_iocs
from repro.nlp.merge import should_merge
from repro.nlp.segmentation import segment_blocks, segment_sentences
from repro.nlp.tokenizer import tokenize
from repro.nlp.wordvec import character_overlap, cosine_similarity, vectorize

_printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200
)

_ioc_texts = st.sampled_from(
    [
        "/bin/tar",
        "/etc/passwd",
        "/tmp/upload.tar",
        "/tmp/upload.tar.bz2",
        "upload.tar",
        "192.168.29.128",
        "192.168.29.128/32",
        "10.0.0.1",
        "evil-domain.com",
        "payload.exe",
    ]
)

_ioc_types = st.sampled_from(list(IOCType))


class TestTokenizerProperties:
    @given(_printable)
    def test_token_offsets_index_into_source(self, text):
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    @given(_printable)
    def test_token_indices_are_sequential(self, text):
        tokens = tokenize(text)
        assert [token.index for token in tokens] == list(range(len(tokens)))

    @given(_printable)
    def test_tokens_never_contain_whitespace(self, text):
        for token in tokenize(text):
            assert not any(ch.isspace() for ch in token.text)


class TestSegmentationProperties:
    @given(_printable)
    def test_blocks_are_substrings_at_their_offsets(self, text):
        for block in segment_blocks(text):
            assert text[block.start : block.end] == block.text

    @given(_printable)
    def test_sentences_cover_only_block_content(self, text):
        for block in segment_blocks(text):
            for sentence in segment_sentences(block.text):
                assert block.text[sentence.start : sentence.end] == sentence.text

    @given(_printable)
    def test_segmentation_never_crashes_or_loses_nonspace_characters(self, text):
        blocks = segment_blocks(text)
        joined = "".join(block.text for block in blocks)
        assert sorted(c for c in joined if not c.isspace()) == sorted(
            c for c in text if not c.isspace()
        )


class TestProtectionProperties:
    @given(st.lists(_ioc_texts, min_size=1, max_size=5, unique=True))
    def test_protection_replaces_every_recognised_ioc(self, iocs):
        text = "The attacker used " + " and then ".join(iocs) + " during the intrusion."
        recognised = recognize_iocs(text)
        protected = protect_iocs(text)
        assert len(protected.replacements) == len(recognised)
        for offset, _ in protected.replacements:
            assert protected.text[offset : offset + len(PROTECTION_WORD)] == PROTECTION_WORD

    @given(_printable)
    def test_protection_is_stable_for_arbitrary_text(self, text):
        protected = protect_iocs(text)
        assert protected.original == text
        assert len(protected.replacements) == len(recognize_iocs(text))

    @given(st.lists(_ioc_texts, min_size=1, max_size=5))
    def test_protected_iocs_returned_in_occurrence_order(self, iocs):
        text = " then ".join(iocs) + " were observed."
        protected = protect_iocs(text)
        offsets = [offset for offset, _ in protected.replacements]
        assert offsets == sorted(offsets)


class TestMergeProperties:
    @given(_ioc_texts, _ioc_types)
    def test_merge_is_reflexive(self, text, ioc_type):
        ioc = IOC(text, ioc_type)
        assert should_merge(ioc, ioc)

    @given(_ioc_texts, _ioc_types, _ioc_texts, _ioc_types)
    def test_merge_is_symmetric(self, text_a, type_a, text_b, type_b):
        first, second = IOC(text_a, type_a), IOC(text_b, type_b)
        assert should_merge(first, second) == should_merge(second, first)


class TestVectorProperties:
    @given(_printable)
    def test_vector_norm_at_most_one(self, text):
        vector = vectorize(text)
        norm = sum(value * value for value in vector) ** 0.5
        assert norm <= 1.0 + 1e-9

    @given(_printable)
    def test_self_similarity_is_one_for_nonempty(self, text):
        if len(text.strip()) < 2:
            return
        assert cosine_similarity(text, text) == round(
            cosine_similarity(text, text), 10
        ) >= 0.999 or cosine_similarity(text, text) >= 0.999

    @given(_printable, _printable)
    def test_similarities_bounded(self, first, second):
        assert -1e-9 <= cosine_similarity(first, second) <= 1.0 + 1e-9
        assert 0.0 <= character_overlap(first, second) <= 1.0

    @given(_printable, _printable)
    def test_similarity_symmetric(self, first, second):
        assert cosine_similarity(first, second) == cosine_similarity(second, first)
