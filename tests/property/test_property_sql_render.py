"""Property tests for the parameterized SQL renderer (hypothesis).

Every :class:`Expression` node combination is rendered to parameterized SQL,
executed against an in-memory sqlite table, and compared row-for-row with the
Python ``evaluate()`` semantics.  This is the oracle that pins down the
subtle divergences the sql backend had to fix: empty ``IN ()`` lists,
inexpressible literal ``%``/``_`` in LIKE patterns, SQL three-valued NULL
logic vs. Python's two-valued evaluation, and sqlite's column-affinity
coercion vs. Python's lenient string casts.
"""

from __future__ import annotations

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.relational.expression import (
    And,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpression,
)
from repro.storage.sql.render import render_expression

INT_COLUMNS = ("pid", "port")
TEXT_COLUMNS = ("name", "host")
COLUMNS = INT_COLUMNS + TEXT_COLUMNS

# Small alphabets keep collision (and therefore match) probability high.
_TEXT_ALPHABET = "ab5%_\\"
_PATTERN_ALPHABET = "ab5%_\\"

ints = st.integers(min_value=-5, max_value=10)
texts = st.text(alphabet=_TEXT_ALPHABET, max_size=6)
int_values = st.one_of(st.none(), ints)
text_values = st.one_of(st.none(), texts)

rows = st.lists(
    st.fixed_dictionaries(
        {
            "pid": int_values,
            "port": int_values,
            "name": text_values,
            "host": text_values,
        }
    ),
    max_size=12,
)

int_columns = st.sampled_from(INT_COLUMNS).map(Column)
text_columns = st.sampled_from(TEXT_COLUMNS).map(Column)
any_columns = st.sampled_from(COLUMNS).map(Column)
operators = st.sampled_from(("=", "!=", "<", "<=", ">", ">="))

# Literals deliberately include type-mismatched values (a digit string against
# an int column, an int against a text column): Comparison.evaluate coerces
# mixed operands to strings and the renderer must reproduce exactly that.
literals = st.one_of(st.none(), ints, texts).map(Literal)

comparisons = st.one_of(
    st.builds(Comparison, any_columns, operators, literals),
    st.builds(
        lambda left, op, right: Comparison(left, op, right),
        literals,
        operators,
        any_columns,
    ),
    st.builds(Comparison, any_columns, operators, any_columns),
)

likes = st.builds(
    Like,
    any_columns,
    st.text(alphabet=_PATTERN_ALPHABET, max_size=6),
    st.booleans(),
)

in_lists = st.builds(
    InList,
    any_columns,
    st.lists(st.one_of(st.none(), ints, texts), max_size=4).map(tuple),
    st.booleans(),
)

betweens = st.one_of(
    st.builds(Between, int_columns, ints, ints),
    st.builds(Between, text_columns, texts, texts),
)

leaves = st.one_of(
    comparisons, likes, in_lists, betweens, st.just(TrueExpression())
)

predicates = st.recursive(
    leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=3).map(And),
        st.lists(children, max_size=3).map(Or),
        children.map(Not),
    ),
    max_leaves=8,
)


def _sqlite_matches(
    expression: Expression, table_rows: list[dict[str, object]]
) -> set[int]:
    connection = sqlite3.connect(":memory:")
    try:
        connection.execute(
            "CREATE TABLE t (pid INTEGER, port INTEGER, name TEXT, host TEXT)"
        )
        connection.executemany(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            [tuple(row[column] for column in COLUMNS) for row in table_rows],
        )
        rendered = render_expression(expression, alias=None, parameterized=True)
        cursor = connection.execute(
            f"SELECT rowid FROM t WHERE {rendered.text}", rendered.parameters
        )
        return {row[0] for row in cursor.fetchall()}
    finally:
        connection.close()


class TestRendererAgreesWithEvaluate:
    @settings(max_examples=250, deadline=None)
    @given(expression=predicates, table_rows=rows)
    def test_rendered_sql_matches_evaluate_row_for_row(
        self, expression: Expression, table_rows: list[dict[str, object]]
    ) -> None:
        expected = {
            index + 1  # sqlite rowids are 1-based and insertion-ordered
            for index, row in enumerate(table_rows)
            if expression.evaluate(row)
        }
        assert _sqlite_matches(expression, table_rows) == expected

    @settings(max_examples=100, deadline=None)
    @given(expression=predicates, table_rows=rows)
    def test_alias_qualified_rendering_matches_too(
        self, expression: Expression, table_rows: list[dict[str, object]]
    ) -> None:
        connection = sqlite3.connect(":memory:")
        try:
            connection.execute(
                "CREATE TABLE t (pid INTEGER, port INTEGER, name TEXT, host TEXT)"
            )
            connection.executemany(
                "INSERT INTO t VALUES (?, ?, ?, ?)",
                [tuple(row[column] for column in COLUMNS) for row in table_rows],
            )
            rendered = render_expression(expression, alias="x", parameterized=True)
            cursor = connection.execute(
                f"SELECT x.rowid FROM t x WHERE {rendered.text}",
                rendered.parameters,
            )
            matched = {row[0] for row in cursor.fetchall()}
        finally:
            connection.close()
        expected = {
            index + 1
            for index, row in enumerate(table_rows)
            if expression.evaluate(row)
        }
        assert matched == expected
