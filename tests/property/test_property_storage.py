"""Property-based tests for the storage engines (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.relational.expression import (
    And,
    Between,
    Column,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
    Or,
)
from repro.storage.relational.index import HashIndex, SortedIndex
from repro.storage.relational.table import ColumnDefinition, Table, TableSchema

_values = st.integers(min_value=-50, max_value=50)
_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])


class TestExpressionProperties:
    @given(st.integers(), st.integers())
    def test_comparison_matches_python_semantics(self, left, right):
        row = {"x": left}
        assert Comparison(Column("x"), "<", Literal(right)).evaluate(row) == (left < right)
        assert Comparison(Column("x"), "=", Literal(right)).evaluate(row) == (left == right)
        assert Comparison(Column("x"), ">=", Literal(right)).evaluate(row) == (left >= right)

    @given(st.booleans(), st.booleans())
    def test_boolean_combinators_truth_table(self, a, b):
        row = {"a": 1 if a else 0, "b": 1 if b else 0}
        expr_a = Comparison(Column("a"), "=", Literal(1))
        expr_b = Comparison(Column("b"), "=", Literal(1))
        assert And([expr_a, expr_b]).evaluate(row) == (a and b)
        assert Or([expr_a, expr_b]).evaluate(row) == (a or b)
        assert Not(expr_a).evaluate(row) == (not a)

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20))
    def test_like_without_wildcards_is_equality(self, value):
        if "%" in value or "_" in value:
            return
        row = {"name": value}
        assert Like(Column("name"), value).evaluate(row)

    @given(
        st.text(alphabet="abc/.", max_size=10),
        st.text(alphabet="abc/.", max_size=10),
        st.text(alphabet="abc/.", max_size=10),
    )
    def test_like_contains_pattern(self, prefix, middle, suffix):
        row = {"name": prefix + middle + suffix}
        assert Like(Column("name"), f"%{middle}%").evaluate(row)

    @given(_values, _values, _values)
    def test_between_matches_interval_membership(self, value, low, high):
        low, high = min(low, high), max(low, high)
        row = {"t": value}
        assert Between(Column("t"), low, high).evaluate(row) == (low <= value <= high)

    @given(st.lists(_values, min_size=1, max_size=5), _values)
    def test_inlist_matches_membership(self, values, probe):
        row = {"x": probe}
        assert InList(Column("x"), tuple(values)).evaluate(row) == (probe in values)


class TestIndexProperties:
    @given(st.lists(st.tuples(_names, st.integers(0, 100)), max_size=60))
    def test_hash_index_agrees_with_brute_force(self, entries):
        index = HashIndex("name")
        for position, (value, _) in enumerate(entries):
            index.insert(value, position)
        for probe in ("alpha", "beta", "gamma", "delta"):
            expected = [position for position, (value, _) in enumerate(entries) if value == probe]
            assert index.lookup(probe) == expected

    @given(
        st.lists(_values, max_size=60),
        _values,
        _values,
    )
    def test_sorted_index_range_agrees_with_brute_force(self, values, low, high):
        low, high = min(low, high), max(low, high)
        index = SortedIndex("t")
        for position, value in enumerate(values):
            index.insert(value, position)
        expected = sorted(
            position for position, value in enumerate(values) if low <= value <= high
        )
        assert sorted(index.range(low, high)) == expected

    @given(st.lists(_values, max_size=60))
    def test_sorted_index_full_range_returns_everything(self, values):
        index = SortedIndex("t")
        for position, value in enumerate(values):
            index.insert(value, position)
        assert sorted(index.range()) == list(range(len(values)))


class TestTableProperties:
    _schema = TableSchema(
        name="t",
        columns=(
            ColumnDefinition("id", int, nullable=False),
            ColumnDefinition("name", str),
            ColumnDefinition("size", int),
        ),
    )

    @settings(max_examples=50)
    @given(st.lists(st.tuples(_names, st.integers(0, 30)), max_size=40))
    def test_indexed_lookup_agrees_with_scan(self, rows):
        table = Table(self._schema)
        table.create_hash_index("name")
        table.create_sorted_index("size")
        for index, (name, size) in enumerate(rows):
            table.insert({"id": index, "name": name, "size": size})
        for probe in ("alpha", "delta"):
            via_index = sorted(row["id"] for row in table.lookup_equal("name", probe))
            via_scan = sorted(row["id"] for row in table.scan() if row["name"] == probe)
            assert via_index == via_scan
        via_index = sorted(row["id"] for row in table.lookup_range("size", 5, 20))
        via_scan = sorted(row["id"] for row in table.scan() if 5 <= row["size"] <= 20)
        assert via_index == via_scan

    @settings(max_examples=50)
    @given(st.lists(st.tuples(_names, st.integers(0, 30)), max_size=40))
    def test_row_count_matches_inserts(self, rows):
        table = Table(self._schema)
        for index, (name, size) in enumerate(rows):
            table.insert({"id": index, "name": name, "size": size})
        assert len(table) == len(rows)
        assert len(list(table.scan())) == len(rows)
