"""Property-based tests for TBQL: formatter/parser round-trip and scheduling."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auditing.entities import EntityType
from repro.tbql.ast import (
    AttributeComparison,
    EntityDeclaration,
    EventPattern,
    FilterExpression,
    FilterOperator,
    OperationExpression,
    PathPattern,
    Query,
    ReturnItem,
    TemporalRelation,
)
from repro.tbql.formatter import format_query
from repro.tbql.parser import parse_query
from repro.tbql.scheduler import ExecutionScheduler
from repro.tbql.semantics import analyze

_FILE_OPERATIONS = ("read", "write", "execute", "delete")
_NETWORK_OPERATIONS = ("connect", "send", "recv")
_VALUES = ("%/bin/tar%", "%/etc/passwd%", "%/tmp/upload%", "192.168.29.128", "%curl%")


@st.composite
def _queries(draw) -> Query:
    """Random small, semantically valid TBQL queries."""
    pattern_count = draw(st.integers(min_value=1, max_value=5))
    query = Query(distinct=draw(st.booleans()))
    used_process_ids: list[str] = []
    for index in range(1, pattern_count + 1):
        # Subject: either a new filtered process or a previously used one.
        if used_process_ids and draw(st.booleans()):
            subject = EntityDeclaration(
                entity_type=EntityType.PROCESS,
                identifier=draw(st.sampled_from(used_process_ids)),
            )
        else:
            identifier = f"p{index}"
            used_process_ids.append(identifier)
            subject = EntityDeclaration(
                entity_type=EntityType.PROCESS,
                identifier=identifier,
                filter=FilterExpression.leaf(
                    AttributeComparison("", FilterOperator.LIKE, draw(st.sampled_from(_VALUES)))
                ),
            )
        object_is_network = draw(st.booleans())
        if object_is_network:
            obj = EntityDeclaration(
                entity_type=EntityType.NETWORK,
                identifier=f"i{index}",
                filter=FilterExpression.leaf(
                    AttributeComparison("", FilterOperator.EQ, "192.168.29.128")
                ),
            )
            operation = OperationExpression(operations=(draw(st.sampled_from(_NETWORK_OPERATIONS)),))
        else:
            obj = EntityDeclaration(
                entity_type=EntityType.FILE,
                identifier=f"f{index}",
                filter=FilterExpression.leaf(
                    AttributeComparison("", FilterOperator.LIKE, draw(st.sampled_from(_VALUES)))
                ),
            )
            operation = OperationExpression(operations=(draw(st.sampled_from(_FILE_OPERATIONS)),))
        event_id = f"evt{index}"
        if draw(st.booleans()) and not object_is_network:
            pattern: EventPattern | PathPattern = PathPattern(
                subject=subject,
                operation=operation,
                obj=obj,
                event_id=event_id,
                min_length=1,
                max_length=draw(st.integers(min_value=1, max_value=4)),
            )
        else:
            pattern = EventPattern(
                subject=subject, operation=operation, obj=obj, event_id=event_id
            )
        query.patterns.append(pattern)
    for earlier, later in zip(query.patterns, query.patterns[1:]):
        query.temporal_relations.append(
            TemporalRelation(left=earlier.event_id, relation="before", right=later.event_id)
        )
    for identifier in query.entity_identifiers():
        query.return_items.append(ReturnItem(identifier=identifier))
    return query


class TestFormatterParserRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_queries())
    def test_roundtrip_preserves_structure(self, query):
        text = format_query(query)
        reparsed = parse_query(text)
        assert len(reparsed.patterns) == len(query.patterns)
        assert [p.event_id for p in reparsed.patterns] == [p.event_id for p in query.patterns]
        assert len(reparsed.temporal_relations) == len(query.temporal_relations)
        assert reparsed.distinct == query.distinct
        assert [item.identifier for item in reparsed.return_items] == [
            item.identifier for item in query.return_items
        ]

    @settings(max_examples=60, deadline=None)
    @given(_queries())
    def test_roundtrip_is_idempotent_after_first_format(self, query):
        once = format_query(parse_query(format_query(query)))
        twice = format_query(parse_query(once))
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(_queries())
    def test_generated_queries_pass_semantic_analysis(self, query):
        analyzed = analyze(parse_query(format_query(query)))
        assert set(analyzed.pattern_entities) == {p.event_id for p in query.patterns}


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(_queries())
    def test_schedule_is_a_permutation_of_patterns(self, query):
        schedule = ExecutionScheduler().schedule(query)
        assert sorted(step.pattern.event_id for step in schedule) == sorted(
            pattern.event_id for pattern in query.patterns
        )

    @settings(max_examples=60, deadline=None)
    @given(_queries())
    def test_constrained_identifiers_only_reference_earlier_patterns(self, query):
        schedule = ExecutionScheduler().schedule(query)
        seen: set[str] = set()
        for step in schedule:
            assert set(step.constrained_identifiers) <= seen
            seen.update(step.pattern.entity_identifiers())

    @settings(max_examples=60, deadline=None)
    @given(_queries())
    def test_first_scheduled_pattern_has_maximal_score(self, query):
        scheduler = ExecutionScheduler()
        schedule = scheduler.schedule(query)
        from repro.tbql.scheduler import pruning_score

        best = max(pruning_score(pattern) for pattern in query.patterns)
        assert pruning_score(schedule[0].pattern) == best
