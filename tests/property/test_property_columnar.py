"""Property/stress tests for the columnar engine (hypothesis).

The vectorized position-filter paths, the positional hash-join executor and
the TBQL binding join are each compared against naive per-row reference
implementations on randomized inputs:

* ``Table.filter_positions`` vs. evaluating ``Expression.evaluate`` on every
  materialized row (the pre-columnar semantics);
* ``QueryExecutor.execute`` vs. :class:`ReferenceQueryExecutor` (the old
  row-dict executor) — row-for-row, order included;
* ``TBQLExecutionEngine._join`` vs. a nested-loop join over binding dicts.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.relational.expression import (
    And,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
)
from repro.storage.relational.executor import QueryExecutor
from repro.storage.relational.query import SelectQuery
from repro.storage.relational.reference import ReferenceQueryExecutor
from repro.storage.relational.table import ColumnDefinition, Table, TableSchema
from repro.tbql.executor import TBQLExecutionEngine

SCHEMA = TableSchema(
    name="items",
    columns=(
        ColumnDefinition("id", int, nullable=False),
        ColumnDefinition("name", str),
        ColumnDefinition("size", int),
        ColumnDefinition("owner", str),
    ),
)

_names = st.one_of(
    st.none(), st.sampled_from(["alpha", "beta", "gamma", "/etc/passwd", "ALPHA"])
)
_sizes = st.one_of(st.none(), st.integers(min_value=-20, max_value=20))
_owners = st.sampled_from(["root", "www", "backup"])

_rows = st.lists(
    st.tuples(_names, _sizes, _owners), min_size=0, max_size=40
)

# Leaf predicates cover every vectorized form: comparisons in both operand
# orders (including mixed-type literals exercising the string-coercion path),
# LIKE with and without wildcards/negation, IN lists, BETWEEN, and a
# column-to-column comparison.
_leaves = st.one_of(
    # Ordered comparisons on the sorted-indexed int column use int literals:
    # a string bound would send the planner's index-range path into
    # SortedIndex.range with mixed types, which raises TypeError by design
    # (in the pre-columnar engine too — time columns are homogeneous).
    st.builds(
        lambda op, value: Comparison(Column("size"), op, Literal(value)),
        st.sampled_from(["<", "<=", ">", ">="]),
        st.one_of(st.integers(-15, 15), st.none()),
    ),
    # Equality/inequality never routes through the sorted index, so it also
    # exercises the mixed-type string-coercion path.
    st.builds(
        lambda op, value: Comparison(Column("size"), op, Literal(value)),
        st.sampled_from(["=", "!="]),
        st.one_of(st.integers(-15, 15), st.sampled_from(["5", "alpha"]), st.none()),
    ),
    st.builds(
        lambda op, value: Comparison(Literal(value), op, Column("name")),
        st.sampled_from(["=", "<", ">"]),
        st.sampled_from(["alpha", "gamma", 3]),
    ),
    st.builds(
        lambda pattern, negate: Like(Column("name"), pattern, negate=negate),
        st.sampled_from(["alpha", "%a%", "a%", "%a", "_lpha", "%etc%", "%"]),
        st.booleans(),
    ),
    st.builds(
        lambda values, negate: InList(Column("owner"), tuple(values), negate=negate),
        st.lists(st.sampled_from(["root", "www", "backup", "nobody"]), min_size=1, max_size=3),
        st.booleans(),
    ),
    st.builds(
        lambda low, high: Between(Column("size"), min(low, high), max(low, high)),
        st.integers(-15, 15),
        st.integers(-15, 15),
    ),
    st.builds(lambda: Comparison(Column("id"), "=", Column("size"))),
)

_predicates = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.builds(lambda ops: And(ops), st.lists(children, min_size=1, max_size=3)),
        st.builds(lambda ops: Or(ops), st.lists(children, min_size=1, max_size=3)),
        st.builds(Not, children),
    ),
    max_leaves=6,
)


def _build_table(rows) -> Table:
    table = Table(SCHEMA)
    table.create_hash_index("name")
    table.create_hash_index("owner")
    table.create_sorted_index("size")
    for index, (name, size, owner) in enumerate(rows):
        table.insert({"id": index, "name": name, "size": size, "owner": owner})
    return table


def _reference_positions(table: Table, predicate: Expression) -> list[int]:
    """The pre-columnar semantics: evaluate the predicate per materialized row."""
    return [
        position
        for position in table.all_positions()
        if predicate.evaluate(table.row_at(position))
    ]


class TestVectorizedFilterProperties:
    @settings(max_examples=200)
    @given(_rows, _predicates)
    def test_filter_positions_matches_per_row_evaluation(self, rows, predicate):
        table = _build_table(rows)
        assert table.filter_positions(predicate) == _reference_positions(table, predicate)

    @settings(max_examples=100)
    @given(_rows, _predicates, st.lists(st.integers(0, 39), max_size=15))
    def test_filter_respects_candidate_positions(self, rows, predicate, candidates):
        table = _build_table(rows)
        candidates = [p for p in candidates if p < len(table)]
        expected = [
            p for p in candidates if predicate.evaluate(table.row_at(p))
        ]
        assert table.filter_positions(predicate, candidates) == expected

    @settings(max_examples=100)
    @given(_rows, _predicates)
    def test_scan_yields_rows_in_position_order(self, rows, predicate):
        table = _build_table(rows)
        scanned = [row["id"] for row in table.scan(predicate)]
        assert scanned == _reference_positions(table, predicate)


class TestExecutorAgainstReference:
    """The positional executor returns exactly what the row-dict one does."""

    @settings(max_examples=100, deadline=None)
    @given(_rows, _predicates, st.booleans())
    def test_single_table_query(self, rows, predicate, distinct):
        table = _build_table(rows)
        tables = {"items": table}
        query = SelectQuery(distinct=distinct)
        query.add_table("items", "t")
        query.add_filter("t", predicate)
        query.add_output("t", "id")
        query.add_output("t", "name")
        columnar = QueryExecutor(tables).execute(query)
        reference = ReferenceQueryExecutor(tables).execute(query)
        assert columnar.columns == reference.columns
        assert columnar.rows == reference.rows

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 8), _owners), min_size=0, max_size=30),
        st.lists(st.tuples(st.integers(0, 8), _sizes), min_size=0, max_size=30),
    )
    def test_two_table_join(self, left_rows, right_rows):
        left = Table(
            TableSchema(
                name="left",
                columns=(
                    ColumnDefinition("id", int, nullable=False),
                    ColumnDefinition("key", int),
                    ColumnDefinition("owner", str),
                ),
            )
        )
        left.create_hash_index("key")
        for index, (key, owner) in enumerate(left_rows):
            left.insert({"id": index, "key": key, "owner": owner})
        right = Table(
            TableSchema(
                name="right",
                columns=(
                    ColumnDefinition("id", int, nullable=False),
                    ColumnDefinition("key", int),
                    ColumnDefinition("size", int),
                ),
            )
        )
        for index, (key, size) in enumerate(right_rows):
            right.insert({"id": index, "key": key, "size": size})
        tables = {"left": left, "right": right}
        query = SelectQuery()
        query.add_table("left", "l")
        query.add_table("right", "r")
        query.add_join("l", "key", "r", "key")
        query.add_output("l", "id", "lid")
        query.add_output("r", "id", "rid")
        query.add_output("r", "size", "size")
        columnar = QueryExecutor(tables).execute(query)
        reference = ReferenceQueryExecutor(tables).execute(query)
        assert columnar.rows == reference.rows


def _nested_loop_join(left, right, shared):
    """Reference for ``TBQLExecutionEngine._join``: probe right against left."""
    if not left or not right:
        return []
    joined = []
    for right_binding in right:
        for left_binding in left:
            if all(
                left_binding[name]["id"] == right_binding[name]["id"] for name in shared
            ):
                joined.append({**left_binding, **right_binding})
    return joined


_bindings = st.lists(
    st.fixed_dictionaries(
        {
            "p": st.fixed_dictionaries({"id": st.integers(0, 4)}),
            "f": st.fixed_dictionaries({"id": st.integers(0, 4)}),
        }
    ),
    max_size=15,
)


class TestBindingJoinProperties:
    @settings(max_examples=150)
    @given(_bindings, _bindings, st.sampled_from([(), ("p",), ("f",), ("p", "f")]))
    def test_join_matches_nested_loop(self, left, right, shared):
        joined = TBQLExecutionEngine._join(left, right, shared)
        assert joined == _nested_loop_join(left, right, shared)


class TestRandomizedStress:
    def test_large_random_join_agrees_with_reference(self):
        """A seeded 2k-row join stress comparing row-for-row with the reference."""
        rng = random.Random(92)
        table = _build_table(
            [
                (
                    rng.choice(["alpha", "beta", "gamma", None]),
                    rng.choice([None] + list(range(-10, 11))),
                    rng.choice(["root", "www", "backup"]),
                )
                for _ in range(2000)
            ]
        )
        tables = {"items": table}
        predicate = And(
            [
                Or(
                    [
                        Like(Column("name"), "%a%"),
                        Comparison(Column("size"), ">", Literal(3)),
                    ]
                ),
                InList(Column("owner"), ("root", "www")),
                Not(Comparison(Column("size"), "=", Literal(0))),
            ]
        )
        query = SelectQuery()
        query.add_table("items", "a")
        query.add_table("items", "b")
        query.add_join("a", "size", "b", "size")
        query.add_filter("a", predicate)
        query.add_filter("b", Between(Column("size"), -5, 9))
        query.add_output("a", "id", "aid")
        query.add_output("b", "id", "bid")
        columnar = QueryExecutor(tables).execute(query)
        reference = ReferenceQueryExecutor(tables).execute(query)
        assert len(columnar.rows) > 0
        assert columnar.rows == reference.rows
