"""Property tests: the segmented store answers exactly like the in-memory one.

Randomized traces are loaded into both a :class:`RelationalDatabase` (the
in-memory vectorized store) and a :class:`SegmentedRelationalDatabase` with a
tiny seal threshold (so every trace spans several on-disk segments plus a
memtable tail), then randomized queries — including time-window filters that
exercise segment pruning — must return identical row multisets.  Row *order*
may differ: partition-wise execution concatenates per-segment results, so
comparisons sort first.

A seeded stress section does the same for full TBQL hunts (event patterns,
path patterns, temporal constraints) through :class:`AuditStore` with
``storage="segments"``, including after a reopen from disk.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import NoisyFileServerWorkload
from repro.storage.loader import AuditStore
from repro.storage.relational.database import RelationalDatabase
from repro.storage.relational.expression import Between, Column, Comparison, Like, Literal
from repro.storage.relational.query import SelectQuery
from repro.storage.segment import SegmentedRelationalDatabase
from repro.tbql.executor import execute_query

_PROCESSES = ["/bin/tar", "/usr/bin/curl", "/bin/bash"]
_FILES = ["/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/home/user/notes"]

_events = st.lists(
    st.tuples(
        st.integers(0, len(_PROCESSES) - 1),  # subject
        st.integers(0, len(_FILES) - 1),  # object
        st.sampled_from([Operation.READ, Operation.WRITE]),
        st.integers(0, 400),  # start-time offset (deliberately unsorted)
    ),
    min_size=0,
    max_size=80,
)

_windows = st.tuples(st.integers(0, 400), st.integers(0, 400))


def _trace(event_specs) -> AuditTrace:
    entities = [
        ProcessEntity(entity_id=index + 1, exename=name, pid=100 + index)
        for index, name in enumerate(_PROCESSES)
    ] + [
        FileEntity(entity_id=10 + index, name=name) for index, name in enumerate(_FILES)
    ]
    events = [
        SystemEvent(
            event_id=index + 1,
            subject_id=subject + 1,
            object_id=10 + obj,
            operation=operation,
            object_type=EntityType.FILE,
            start_time=1_000 + offset * 10,
            end_time=1_005 + offset * 10,
            amount=32,
        )
        for index, (subject, obj, operation, offset) in enumerate(event_specs)
    ]
    return AuditTrace(entities=entities, events=events)


def _query(optype: str, pattern: str, window, distinct: bool) -> SelectQuery:
    query = SelectQuery(distinct=distinct)
    query.add_table("events", "e")
    query.add_table("entities", "s")
    query.add_table("entities", "o")
    query.add_join("e", "srcid", "s", "id")
    query.add_join("e", "dstid", "o", "id")
    query.add_filter("e", Comparison(Column("optype"), "=", Literal(optype)))
    query.add_filter("s", Like(Column("exename"), pattern))
    if window is not None:
        low, high = min(window), max(window)
        query.add_filter(
            "e", Between(Column("starttime"), 1_000 + low * 10, 1_000 + high * 10)
        )
    query.add_output("s", "exename", "subject")
    query.add_output("o", "name", "object")
    if not distinct:
        query.add_output("e", "id", "event")
    return query


class TestSegmentedMatchesInMemory:
    @settings(max_examples=40, deadline=None)
    @given(
        _events,
        st.sampled_from(["read", "write"]),
        st.sampled_from(["%tar%", "%curl%", "%", "%bash%"]),
        st.one_of(st.none(), _windows),
        st.booleans(),
    )
    def test_identical_row_multisets(self, event_specs, optype, pattern, window, distinct):
        trace = _trace(event_specs)
        memory = RelationalDatabase()
        memory.load_trace(trace)
        query = _query(optype, pattern, window, distinct)
        expected = memory.execute(query)
        with tempfile.TemporaryDirectory(prefix="segprop-") as workdir:
            segmented = SegmentedRelationalDatabase(Path(workdir), segment_rows=8)
            segmented.load_trace(trace)
            actual = segmented.execute(query)
            assert sorted(actual.rows) == sorted(expected.rows)
            assert actual.columns == expected.columns
            if distinct:
                # DISTINCT must hold globally, not merely per segment.
                assert len(set(actual.rows)) == len(actual.rows)

    @settings(max_examples=20, deadline=None)
    @given(_events, st.one_of(st.none(), _windows))
    def test_reopened_store_agrees(self, event_specs, window):
        """Sealing + reopening from the manifest loses no rows and adds none."""
        trace = _trace(event_specs)
        query = _query("read", "%", window, False)
        with tempfile.TemporaryDirectory(prefix="segprop-") as workdir:
            first = SegmentedRelationalDatabase(Path(workdir), segment_rows=8)
            first.load_trace(trace)
            first.seal()
            expected = first.execute(query)
            reopened = SegmentedRelationalDatabase(Path(workdir), segment_rows=8)
            assert sorted(reopened.execute(query).rows) == sorted(expected.rows)


_TBQL_QUERIES = [
    'proc p["%/bin/tar%"] read file f as e return distinct p, f',
    'proc p read or write file f["%data%"] as e return p, f',
    (
        'proc p["%server%"] read file f1 as e1 '
        'proc p write file f2 as e2 '
        "with e1 before e2 return distinct f1, f2"
    ),
    'proc p ~>(1~3)[write] file f as e return distinct p, f',
]


class TestSeededTBQLStress:
    def test_full_hunts_match_across_storage_backends(self):
        """Seeded workload traces: memory vs segments vs reopened segments."""
        rng = random.Random(4099)
        for _ in range(4):
            seed = rng.randrange(1 << 16)
            builder = ScenarioBuilder(seed=seed)
            NoisyFileServerWorkload(sessions=3, operations_per_session=25).generate(builder)
            trace = builder.build()

            memory = AuditStore()
            memory.load_trace(trace)
            with tempfile.TemporaryDirectory(prefix="segprop-") as workdir:
                segmented = AuditStore(
                    storage="segments", data_dir=workdir, segment_rows=64
                )
                segmented.load_trace(trace)
                segmented.flush()
                reopened = AuditStore(
                    storage="segments", data_dir=workdir, segment_rows=64
                )
                for text in _TBQL_QUERIES:
                    expected = execute_query(memory, text)
                    for store in (segmented, reopened):
                        actual = execute_query(store, text)
                        assert sorted(actual.rows) == sorted(expected.rows), (
                            f"seed={seed} query={text!r}"
                        )
                        assert actual.all_matched_event_ids() == (
                            expected.all_matched_event_ids()
                        ), f"seed={seed} query={text!r}"
