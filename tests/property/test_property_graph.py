"""Property/stress tests for the graph path-search engine (hypothesis).

Two independent oracles pin the new machinery down:

* **cross-backend** — a randomized audit trace is loaded into the combined
  store and the same TBQL queries are executed with ``backend="relational"``
  and ``backend="graph"``; both must bind identical audit event-id sets and
  identical result rows;
* **planner vs. DFS oracle** — randomized graph path patterns (direction,
  lengths, windows, id constraints) are matched with the cost-guided
  :class:`CostGuidedPathMatcher` and the retained always-forward
  :class:`PathMatcher`; the enumerated path sets must be identical, whichever
  strategy the planner picks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auditing.entities import FileEntity, ProcessEntity
from repro.auditing.events import EntityType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.pattern import EdgePattern, NodePattern, PathMatcher
from repro.storage.graph.pattern import PathPattern as GraphPathPattern
from repro.storage.graph.planner import CostGuidedPathMatcher
from repro.storage.loader import AuditStore
from repro.tbql.executor import TBQLExecutionEngine

_EXENAMES = ["/bin/bash", "/bin/tar", "/usr/bin/python3"]
_FILENAMES = ["/etc/passwd", "/tmp/staging/archive.tar", "/home/alice/doc.txt"]

#: (subject process index, object index, operation tag, start time)
_event_specs = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.integers(0, 4),
        st.sampled_from(["fork", "read", "write"]),
        st.integers(0, 60),
    ),
    min_size=0,
    max_size=25,
)


def _build_trace(specs) -> AuditTrace:
    """Five processes and five files, with randomized events between them."""
    entities = [
        ProcessEntity(entity_id=index + 1, exename=_EXENAMES[index % len(_EXENAMES)], pid=index + 1)
        for index in range(5)
    ]
    entities += [
        FileEntity(entity_id=100 + index, name=f"{_FILENAMES[index % len(_FILENAMES)]}.{index}")
        for index in range(5)
    ]
    events = []
    for event_id, (subject, obj, operation, start) in enumerate(specs, start=1):
        if operation == "fork":
            # subject == obj is deliberately allowed: self-loop events must
            # behave identically across backends and matchers (matched at
            # 1 hop, excluded from longer simple paths).
            events.append(
                SystemEvent(
                    event_id, subject + 1, obj + 1, Operation.FORK,
                    EntityType.PROCESS, start, start + 1,
                )
            )
        else:
            op = Operation.READ if operation == "read" else Operation.WRITE
            events.append(
                SystemEvent(
                    event_id, subject + 1, 100 + obj, op, EntityType.FILE, start, start + 1
                )
            )
    return AuditTrace(entities=entities, events=events)


_QUERIES = [
    'proc p read file f as e1 return p, f',
    'proc p["%bash%"] write file f as e1 return distinct p, f',
    'proc p fork proc h as e1 proc h write file f as e2 '
    "with e1 before e2 return p, h, f",
    'proc p["%bash%"] ~>(1~3)[write] file f as e return distinct p, f',
    'proc p ~>(2~4)[read] file f["%staging%"] as e return distinct p, f',
]


class TestCrossBackendParity:
    """backend="relational" and backend="graph" bind identical event sets."""

    @settings(max_examples=60, deadline=None)
    @given(_event_specs, st.sampled_from(_QUERIES))
    def test_backends_bind_identical_event_ids(self, specs, query):
        store = AuditStore(apply_reduction=False)
        store.load_trace(_build_trace(specs))
        relational = TBQLExecutionEngine(store, backend="relational").execute(query)
        graph = TBQLExecutionEngine(store, backend="graph").execute(query)
        assert {
            event_id: set(ids) for event_id, ids in relational.matched_event_ids.items()
        } == {event_id: set(ids) for event_id, ids in graph.matched_event_ids.items()}
        assert sorted(relational.rows) == sorted(graph.rows)

    @settings(max_examples=40, deadline=None)
    @given(_event_specs, st.sampled_from(_QUERIES))
    def test_planner_engine_matches_reference_engine(self, specs, query):
        store = AuditStore(apply_reduction=False)
        store.load_trace(_build_trace(specs))
        planner = TBQLExecutionEngine(store, backend="graph", graph_matcher="planner")
        reference = TBQLExecutionEngine(store, backend="graph", graph_matcher="reference")
        planned = planner.execute(query)
        oracle = reference.execute(query)
        assert sorted(planned.rows) == sorted(oracle.rows)
        assert {
            event_id: set(ids) for event_id, ids in planned.matched_event_ids.items()
        } == {event_id: set(ids) for event_id, ids in oracle.matched_event_ids.items()}


_pattern_specs = st.fixed_dictionaries(
    {
        "min_length": st.integers(1, 3),
        "extra_length": st.integers(0, 2),
        "source_exename": st.one_of(st.none(), st.sampled_from(_EXENAMES)),
        "target_label": st.sampled_from(["file", "process", None]),
        "relationship": st.sampled_from(["read", "write", "fork", None]),
        "window": st.one_of(
            st.none(),
            st.tuples(st.integers(0, 30), st.integers(30, 61)),
        ),
        "temporal": st.booleans(),
        "source_ids": st.one_of(
            st.none(), st.frozensets(st.integers(1, 5), max_size=3)
        ),
    }
)


class TestPlannerAgainstOracle:
    """Every planner strategy enumerates exactly the oracle's path set."""

    @settings(max_examples=120, deadline=None)
    @given(_event_specs, _pattern_specs)
    def test_match_sets_identical(self, specs, shape):
        graph = GraphDatabase()
        graph.load_trace(_build_trace(specs))
        properties = (
            {"exename": shape["source_exename"]}
            if shape["source_exename"] is not None
            else {}
        )
        pattern = GraphPathPattern(
            source=NodePattern(
                label="process", properties=properties, allowed_ids=shape["source_ids"]
            ),
            target=NodePattern(label=shape["target_label"]),
            final_edge=EdgePattern(
                relationship=shape["relationship"], window=shape["window"]
            ),
            min_length=shape["min_length"],
            max_length=shape["min_length"] + shape["extra_length"],
            enforce_temporal_order=shape["temporal"],
        )
        oracle = {
            (path.node_ids(), path.edge_ids())
            for path in PathMatcher(graph).match(pattern)
        }
        matcher = CostGuidedPathMatcher(graph)
        planned = {
            (path.node_ids(), path.edge_ids()) for path in matcher.match(pattern)
        }
        assert planned == oracle, matcher.last_plan
