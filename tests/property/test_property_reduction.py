"""Property-based tests for Causality Preserved Reduction invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auditing.entities import EntityType, FileEntity, ProcessEntity
from repro.auditing.events import Operation, SystemEvent
from repro.auditing.reduction import reduce_trace
from repro.auditing.trace import AuditTrace

_PROCESS_IDS = (1, 2)
_FILE_IDS = (3, 4, 5)
_OPERATIONS = (Operation.READ, Operation.WRITE)


@st.composite
def _traces(draw):
    """Random small traces over two processes and three files."""
    count = draw(st.integers(min_value=0, max_value=40))
    events = []
    clock = 0
    for event_id in range(1, count + 1):
        clock += draw(st.integers(min_value=1, max_value=1_000_000_000))
        subject = draw(st.sampled_from(_PROCESS_IDS))
        obj = draw(st.sampled_from(_FILE_IDS))
        operation = draw(st.sampled_from(_OPERATIONS))
        amount = draw(st.integers(min_value=0, max_value=100))
        events.append(
            SystemEvent(
                event_id=event_id,
                subject_id=subject,
                object_id=obj,
                operation=operation,
                object_type=EntityType.FILE,
                start_time=clock,
                end_time=clock + 10,
                amount=amount,
            )
        )
    malicious = {
        event.event_id for event in events if draw(st.booleans()) and draw(st.booleans())
    }
    entities = [
        ProcessEntity(entity_id=1, exename="/bin/a", pid=1),
        ProcessEntity(entity_id=2, exename="/bin/b", pid=2),
        FileEntity(entity_id=3, name="/f/one"),
        FileEntity(entity_id=4, name="/f/two"),
        FileEntity(entity_id=5, name="/f/three"),
    ]
    return AuditTrace(entities=entities, events=events, malicious_event_ids=malicious)


class TestReductionInvariants:
    @settings(max_examples=60, deadline=None)
    @given(_traces())
    def test_never_increases_event_count(self, trace):
        reduced, stats = reduce_trace(trace)
        assert len(reduced.events) <= len(trace.events)
        assert stats.events_after == len(reduced.events)
        assert stats.events_before == len(trace.events)

    @settings(max_examples=60, deadline=None)
    @given(_traces())
    def test_preserves_distinct_edge_set(self, trace):
        reduced, _ = reduce_trace(trace)

        def edges(t: AuditTrace):
            return {(e.subject_id, e.object_id, e.operation) for e in t.events}

        assert edges(reduced) == edges(trace)

    @settings(max_examples=60, deadline=None)
    @given(_traces())
    def test_preserves_total_amount_and_time_span(self, trace):
        reduced, _ = reduce_trace(trace)
        assert sum(e.amount for e in reduced.events) == sum(e.amount for e in trace.events)
        assert reduced.time_span() == trace.time_span()

    @settings(max_examples=60, deadline=None)
    @given(_traces())
    def test_malicious_presence_preserved_per_edge(self, trace):
        reduced, _ = reduce_trace(trace)
        malicious_edges_before = {
            (e.subject_id, e.object_id, e.operation)
            for e in trace.events
            if e.event_id in trace.malicious_event_ids
        }
        malicious_edges_after = {
            (e.subject_id, e.object_id, e.operation)
            for e in reduced.events
            if e.event_id in reduced.malicious_event_ids
        }
        assert malicious_edges_before == malicious_edges_after

    @settings(max_examples=40, deadline=None)
    @given(_traces())
    def test_second_pass_is_no_worse(self, trace):
        reduced_once, first = reduce_trace(trace)
        reduced_twice, second = reduce_trace(reduced_once)
        assert second.events_after <= first.events_after

    @settings(max_examples=40, deadline=None)
    @given(_traces())
    def test_merged_windows_cover_original_windows(self, trace):
        reduced, _ = reduce_trace(trace)
        spans = {}
        for event in reduced.events:
            key = (event.subject_id, event.object_id, event.operation)
            start, end = spans.get(key, (event.start_time, event.end_time))
            spans[key] = (min(start, event.start_time), max(end, event.end_time))
        for event in trace.events:
            key = (event.subject_id, event.object_id, event.operation)
            start, end = spans[key]
            assert start <= event.start_time
            assert end >= event.end_time
