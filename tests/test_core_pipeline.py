"""Integration tests for the ThreatRaptor facade and configuration."""

from __future__ import annotations

import io

import pytest

from repro.auditing.sysdig import write_trace
from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.errors import ConfigurationError
from repro.evaluation import score_hunting


class TestConfig:
    def test_default_config_valid(self):
        config = ThreatRaptorConfig().validate()
        assert config.execution_backend == "auto"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreatRaptorConfig(execution_backend="oracle").validate()

    def test_invalid_path_length_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreatRaptorConfig(synthesis_path_max_length=0).validate()

    def test_negative_merge_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreatRaptorConfig(reduction_merge_window_ns=-5).validate()

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            ThreatRaptor(ThreatRaptorConfig(execution_backend="oracle"))


class TestEndToEndHunt:
    def test_hunt_reproduces_figure2(self, figure2_raptor, figure2_simulation):
        report = figure2_raptor.hunt(FIGURE2_REPORT.text)
        assert len(report.behavior_graph.edges) == 8
        assert len(report.query.patterns) == 8
        assert len(report.result) >= 1
        truth = figure2_simulation.ground_truth("figure2-data-leakage")
        score = score_hunting(report.result.all_matched_event_ids(), truth.event_ids)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_query_text_matches_paper_style(self, figure2_raptor):
        report = figure2_raptor.hunt(FIGURE2_REPORT.text)
        assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1' in report.query_text
        assert "return distinct" in report.query_text

    def test_summary_fields(self, figure2_raptor):
        report = figure2_raptor.hunt(FIGURE2_REPORT.text)
        summary = report.summary()
        assert summary["behavior_edges"] == 8
        assert summary["query_patterns"] == 8
        assert summary["matched_events"] == 8
        assert summary["iocs"] == 9

    def test_stage_apis_compose(self, figure2_raptor):
        extraction = figure2_raptor.extract_behavior_graph(FIGURE2_REPORT.text)
        query = figure2_raptor.synthesize_query(extraction.graph)
        result = figure2_raptor.execute_query(query)
        assert len(result) >= 1

    def test_load_log_stream(self, figure2_simulation):
        buffer = io.StringIO()
        write_trace(figure2_simulation.trace, buffer)
        raptor = ThreatRaptor()
        load_report = raptor.load_log(io.StringIO(buffer.getvalue()), host="victim-host")
        assert load_report.relational_rows["events"] > 0
        report = raptor.hunt(FIGURE2_REPORT.text)
        assert len(report.result) >= 1

    def test_load_log_file(self, tmp_path, figure2_simulation):
        path = tmp_path / "audit.log"
        with open(path, "w", encoding="utf-8") as handle:
            write_trace(figure2_simulation.trace, handle)
        raptor = ThreatRaptor()
        raptor.load_log_file(str(path))
        assert len(raptor.hunt(FIGURE2_REPORT.text).result) >= 1

    def test_relational_and_graph_backends_agree(self, figure2_simulation):
        results = {}
        for backend in ("relational", "graph"):
            raptor = ThreatRaptor(ThreatRaptorConfig(execution_backend=backend))
            raptor.load_trace(figure2_simulation.trace)
            results[backend] = raptor.hunt(FIGURE2_REPORT.text).result
        assert set(results["relational"].rows) == set(results["graph"].rows)

    def test_reduction_disabled_still_hunts(self, figure2_simulation):
        raptor = ThreatRaptor(ThreatRaptorConfig(apply_reduction=False))
        raptor.load_trace(figure2_simulation.trace)
        assert len(raptor.hunt(FIGURE2_REPORT.text).result) >= 1

    def test_path_pattern_synthesis_still_finds_attack(self, figure2_simulation):
        raptor = ThreatRaptor(
            ThreatRaptorConfig(synthesis_use_path_patterns=True, synthesis_path_max_length=2)
        )
        raptor.load_trace(figure2_simulation.trace)
        report = raptor.hunt(FIGURE2_REPORT.text)
        truth = figure2_simulation.ground_truth("figure2-data-leakage")
        matched = report.result.all_matched_event_ids()
        assert truth.event_ids <= matched

    def test_hunt_without_loaded_trace_returns_empty(self):
        raptor = ThreatRaptor()
        report = raptor.hunt(FIGURE2_REPORT.text)
        assert len(report.result) == 0
        assert len(report.behavior_graph.edges) == 8
