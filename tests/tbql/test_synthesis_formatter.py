"""Unit tests for TBQL query synthesis and formatting."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType
from repro.data import FIGURE2_REPORT, report_by_name
from repro.errors import SynthesisError
from repro.nlp.behavior_graph import BehaviorEdge, BehaviorNode, ThreatBehaviorGraph
from repro.nlp.extractor import ThreatBehaviorExtractor
from repro.nlp.ioc import IOC, IOCType
from repro.tbql.ast import EventPattern, PathPattern
from repro.tbql.formatter import count_query_lines, format_query
from repro.tbql.parser import parse_query
from repro.tbql.semantics import analyze
from repro.tbql.synthesis import QuerySynthesizer, SynthesisPlan


def _node(text: str, ioc_type: IOCType = IOCType.FILEPATH) -> BehaviorNode:
    return BehaviorNode(ioc=IOC(text, ioc_type))


def _graph(edges: list[tuple[BehaviorNode, str, BehaviorNode]]) -> ThreatBehaviorGraph:
    graph = ThreatBehaviorGraph()
    seen = {}
    for sequence, (subject, verb, obj) in enumerate(edges, start=1):
        for node in (subject, obj):
            key = node.ioc.normalized()
            if key not in seen:
                seen[key] = node
                graph.nodes.append(node)
        graph.edges.append(
            BehaviorEdge(subject=seen[subject.ioc.normalized()], verb=verb,
                         obj=seen[obj.ioc.normalized()], sequence=sequence)
        )
    return graph


@pytest.fixture(scope="module")
def figure2_graph():
    return ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text).graph


class TestSynthesisFromFigure2:
    def test_eight_event_patterns(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        assert len(query.event_patterns()) == 8

    def test_operations_match_paper(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        operations = [pattern.operation.operations[0] for pattern in query.patterns]
        assert operations == ["read", "write", "read", "write", "read", "write", "read", "connect"]

    def test_entity_identifiers_follow_paper_convention(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        identifiers = query.entity_identifiers()
        assert identifiers[0] == "p1"
        assert "i1" in identifiers
        assert sum(1 for identifier in identifiers if identifier.startswith("f")) == 4
        assert sum(1 for identifier in identifiers if identifier.startswith("p")) == 4

    def test_entity_reuse_across_patterns(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        assert query.patterns[0].subject.identifier == query.patterns[1].subject.identifier
        assert query.patterns[1].obj.identifier == query.patterns[2].obj.identifier

    def test_temporal_chain(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        assert len(query.temporal_relations) == 7
        assert all(relation.relation == "before" for relation in query.temporal_relations)

    def test_wildcard_filters(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        value = query.patterns[0].subject.filter.comparisons()[0].value
        assert value == "%/bin/tar%"

    def test_ip_filter_not_wildcarded(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        last = query.patterns[-1]
        assert last.obj.entity_type is EntityType.NETWORK
        assert last.obj.filter.comparisons()[0].value == "192.168.29.128"

    def test_return_distinct_all_entities(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        assert query.distinct
        assert len(query.return_items) == 9

    def test_synthesized_query_passes_semantic_analysis(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        analyzed = analyze(query)
        assert len(analyzed.entities) == 9


class TestSynthesisRules:
    def test_screening_drops_non_auditable_iocs(self):
        graph = _graph(
            [
                (_node("/bin/tar"), "read", _node("/etc/passwd")),
                (_node("evil.com", IOCType.DOMAIN), "resolve", _node("1.2.3.4", IOCType.IP)),
            ]
        )
        report = QuerySynthesizer().synthesize_with_report(graph)
        assert report.kept_edges == 1
        assert report.dropped_edges == 1
        assert any(node.ioc_type is IOCType.DOMAIN for node in report.screened_nodes)

    def test_download_between_filepaths_maps_to_write(self):
        graph = _graph([(_node("/usr/bin/wget"), "download", _node("/tmp/crack"))])
        query = QuerySynthesizer().synthesize(graph)
        assert query.patterns[0].operation.operations == ("write",)

    def test_send_toward_ip_maps_to_send(self):
        graph = _graph([(_node("/usr/bin/curl"), "send", _node("1.2.3.4", IOCType.IP))])
        query = QuerySynthesizer().synthesize(graph)
        assert query.patterns[0].operation.operations == ("send",)

    def test_write_toward_ip_coerced_to_network_operation(self):
        graph = _graph([(_node("/usr/bin/curl"), "download", _node("1.2.3.4", IOCType.IP))])
        query = QuerySynthesizer().synthesize(graph)
        assert query.patterns[0].operation.operations[0] in ("send", "recv", "connect")

    def test_unknown_verb_gets_type_default(self):
        graph = _graph([(_node("/bin/x"), "frobnicate", _node("/tmp/y"))])
        query = QuerySynthesizer().synthesize(graph)
        assert query.patterns[0].operation.operations == ("read",)

    def test_empty_graph_raises(self):
        with pytest.raises(SynthesisError):
            QuerySynthesizer().synthesize(ThreatBehaviorGraph())

    def test_all_screened_raises(self):
        graph = _graph(
            [(_node("evil.com", IOCType.DOMAIN), "resolve", _node("a.com", IOCType.DOMAIN))]
        )
        with pytest.raises(SynthesisError):
            QuerySynthesizer().synthesize(graph)

    def test_path_pattern_plan(self, figure2_graph):
        plan = SynthesisPlan(use_path_patterns=True, path_min_length=1, path_max_length=3)
        query = QuerySynthesizer(plan).synthesize(figure2_graph)
        assert all(isinstance(pattern, PathPattern) for pattern in query.patterns)
        assert query.patterns[0].max_length == 3

    def test_time_window_plan(self, figure2_graph):
        plan = SynthesisPlan(time_window=(0, 10_000))
        query = QuerySynthesizer(plan).synthesize(figure2_graph)
        assert all(pattern.window is not None for pattern in query.patterns)

    def test_no_wildcard_plan(self):
        graph = _graph([(_node("/bin/tar"), "read", _node("/etc/passwd"))])
        query = QuerySynthesizer(SynthesisPlan(wildcard_filters=False)).synthesize(graph)
        assert query.patterns[0].subject.filter.comparisons()[0].value == "/bin/tar"

    def test_same_ioc_as_subject_and_object_gets_two_roles(self):
        graph = _graph(
            [
                (_node("/usr/bin/wget"), "download", _node("/tmp/crack")),
                (_node("/tmp/crack"), "read", _node("/etc/shadow")),
            ]
        )
        query = QuerySynthesizer().synthesize(graph)
        identifiers = query.entity_identifiers()
        # /tmp/crack appears once as a file object (f*) and once as a process subject (p*).
        assert len([i for i in identifiers if i.startswith("p")]) == 2
        assert len([i for i in identifiers if i.startswith("f")]) == 2


class TestFormatter:
    def test_figure2_roundtrip(self, figure2_graph):
        query = QuerySynthesizer().synthesize(figure2_graph)
        text = format_query(query)
        reparsed = parse_query(text)
        assert len(reparsed.patterns) == len(query.patterns)
        assert len(reparsed.temporal_relations) == len(query.temporal_relations)
        assert [item.identifier for item in reparsed.return_items] == [
            item.identifier for item in query.return_items
        ]

    def test_format_contains_paper_style_lines(self, figure2_graph):
        text = format_query(QuerySynthesizer().synthesize(figure2_graph))
        assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1' in text
        assert "return distinct p1, f1" in text
        assert "with evt1 before evt2" in text

    def test_path_pattern_rendering(self):
        query = parse_query("proc p ~>(2~4)[read] file f as e return p")
        text = format_query(query)
        assert "~>(2~4)[read]" in text
        assert len(parse_query(text).patterns) == 1

    def test_time_window_rendering(self):
        query = parse_query("proc p read file f as e during (5, 10) return p")
        text = format_query(query)
        assert "during (5, 10)" in text
        assert parse_query(text).patterns[0].window.start == 5

    def test_explicit_attribute_rendering(self):
        query = parse_query('proc p[pid > 10 and exename = "%sh%"] read file f as e return p.pid')
        text = format_query(query)
        reparsed = parse_query(text)
        comparisons = reparsed.patterns[0].subject.filter.comparisons()
        assert {c.attribute for c in comparisons} == {"pid", "exename"}

    def test_count_query_lines(self, figure2_graph):
        text = format_query(QuerySynthesizer().synthesize(figure2_graph))
        assert count_query_lines(text) == 10  # 8 patterns + with + return
