"""Unit tests for the TBQL parser."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType
from repro.errors import TBQLSyntaxError
from repro.tbql.ast import EventPattern, FilterOperator, PathPattern
from repro.tbql.parser import parse_query

FIG2_QUERY = """
proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4["%/usr/bin/curl%"] connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5,
     evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1
"""


class TestFigure2Query:
    """The paper's example query must parse into the expected structure."""

    @pytest.fixture(scope="class")
    def query(self):
        return parse_query(FIG2_QUERY)

    def test_eight_event_patterns(self, query):
        assert len(query.patterns) == 8
        assert all(isinstance(pattern, EventPattern) for pattern in query.patterns)

    def test_event_ids(self, query):
        assert [pattern.event_id for pattern in query.patterns] == [
            f"evt{i}" for i in range(1, 9)
        ]

    def test_entity_types_and_identifiers(self, query):
        first = query.patterns[0]
        assert first.subject.entity_type is EntityType.PROCESS
        assert first.subject.identifier == "p1"
        assert first.obj.entity_type is EntityType.FILE
        last = query.patterns[-1]
        assert last.obj.entity_type is EntityType.NETWORK
        assert last.obj.identifier == "i1"

    def test_default_attribute_filters(self, query):
        comparison = query.patterns[0].subject.filter.comparisons()[0]
        assert comparison.attribute == ""  # default attribute shorthand
        assert comparison.value == "%/bin/tar%"

    def test_entity_reuse_without_filter(self, query):
        second = query.patterns[1]
        assert second.subject.identifier == "p1"
        assert second.subject.filter is None

    def test_temporal_relations(self, query):
        assert len(query.temporal_relations) == 7
        assert query.temporal_relations[0].left == "evt1"
        assert query.temporal_relations[0].relation == "before"

    def test_return_clause(self, query):
        assert query.distinct
        assert [item.identifier for item in query.return_items] == [
            "p1", "f1", "f2", "p2", "f3", "p3", "f4", "p4", "i1",
        ]


class TestPatternVariants:
    def test_explicit_attribute_filter(self):
        query = parse_query('proc p[exename = "/bin/sh" and pid > 100] read file f as e return p')
        comparisons = query.patterns[0].subject.filter.comparisons()
        assert {c.attribute for c in comparisons} == {"exename", "pid"}
        assert any(c.operator is FilterOperator.GT for c in comparisons)

    def test_or_filter(self):
        query = parse_query('proc p["a" or "b"] read file f as e return p')
        assert query.patterns[0].subject.filter.combinator == "or"

    def test_mixed_and_or_rejected(self):
        with pytest.raises(TBQLSyntaxError, match="mixing"):
            parse_query('proc p[exename = "a" and pid > 1 or pid < 5] read file f as e return p')

    def test_operation_alternatives(self):
        query = parse_query("proc p read or write file f as e return p")
        assert query.patterns[0].operation.operations == ("read", "write")

    def test_negated_operation(self):
        query = parse_query("proc p not delete file f as e return p")
        assert query.patterns[0].operation.negated

    def test_path_pattern_default_lengths(self):
        query = parse_query("proc p ~>[read] file f as e return p")
        pattern = query.patterns[0]
        assert isinstance(pattern, PathPattern)
        assert (pattern.min_length, pattern.max_length) == (1, 5)

    def test_path_pattern_explicit_lengths(self):
        query = parse_query("proc p ~>(2~4)[read] file f as e return p")
        pattern = query.patterns[0]
        assert (pattern.min_length, pattern.max_length) == (2, 4)

    def test_path_pattern_invalid_lengths(self):
        with pytest.raises(TBQLSyntaxError, match="invalid path length"):
            parse_query("proc p ~>(4~2)[read] file f as e return p")

    def test_time_window(self):
        query = parse_query("proc p read file f as e during (100, 200) return p")
        assert query.patterns[0].window.start == 100
        assert query.patterns[0].window.end == 200

    def test_invalid_time_window(self):
        with pytest.raises(TBQLSyntaxError, match="window end"):
            parse_query("proc p read file f as e during (200, 100) return p")

    def test_auto_event_id_when_as_omitted(self):
        query = parse_query("proc p read file f return p")
        assert query.patterns[0].event_id.startswith("_evt")

    def test_attribute_relation_in_with_clause(self):
        query = parse_query(
            "proc p read file f as e1 proc q write file g as e2 "
            "with e1.srcid = e2.srcid return p"
        )
        relation = query.attribute_relations[0]
        assert (relation.left_event, relation.left_attribute) == ("e1", "srcid")
        assert (relation.right_event, relation.right_attribute) == ("e2", "srcid")

    def test_return_with_attributes(self):
        query = parse_query("proc p read file f as e return p.pid, f.name")
        assert [(item.identifier, item.attribute) for item in query.return_items] == [
            ("p", "pid"),
            ("f", "name"),
        ]


class TestSyntaxErrors:
    def test_missing_return_clause(self):
        with pytest.raises(TBQLSyntaxError):
            parse_query("proc p read file f as e")

    def test_empty_query(self):
        with pytest.raises(TBQLSyntaxError):
            parse_query("")

    def test_bad_entity_type(self):
        with pytest.raises(TBQLSyntaxError, match="entity type"):
            parse_query("socket s read file f as e return s")

    def test_missing_operation(self):
        with pytest.raises(TBQLSyntaxError):
            parse_query("proc p file f as e return p")

    def test_trailing_garbage(self):
        with pytest.raises(TBQLSyntaxError, match="trailing"):
            parse_query("proc p read file f as e return p garbage here")

    def test_bad_with_clause(self):
        with pytest.raises(TBQLSyntaxError, match="before"):
            parse_query("proc p read file f as e with e around e return p")

    def test_error_carries_location(self):
        try:
            parse_query("proc p read file f as e\nreturn p garbage")
        except TBQLSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected a syntax error")
