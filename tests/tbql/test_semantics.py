"""Unit tests for TBQL semantic analysis."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType
from repro.errors import TBQLSemanticError
from repro.tbql.parser import parse_query
from repro.tbql.semantics import SemanticAnalyzer, analyze


class TestValidQueries:
    def test_entities_collected_with_types(self):
        analyzed = analyze(parse_query('proc p["%x%"] read file f as e return p, f'))
        assert analyzed.entity_type_of("p") is EntityType.PROCESS
        assert analyzed.entity_type_of("f") is EntityType.FILE

    def test_default_attribute_resolution_in_return(self):
        analyzed = analyze(parse_query("proc p read file f as e return p, f"))
        items = {(item.identifier, item.attribute) for item in analyzed.query.return_items}
        assert items == {("p", "exename"), ("f", "name")}

    def test_explicit_return_attributes_preserved(self):
        analyzed = analyze(parse_query("proc p read file f as e return p.pid, f.name"))
        items = [(item.identifier, item.attribute) for item in analyzed.query.return_items]
        assert items == [("p", "pid"), ("f", "name")]

    def test_network_default_attribute(self):
        analyzed = analyze(parse_query('proc p connect ip i["1.2.3.4"] as e return i'))
        assert analyzed.query.return_items[0].attribute == "dstip"

    def test_implied_joins_from_entity_reuse(self):
        analyzed = analyze(
            parse_query(
                'proc p["%tar%"] read file f as e1 proc p write file g as e2 return p, f, g'
            )
        )
        assert ("e1", "srcid", "e2", "srcid", "p") in analyzed.implied_joins

    def test_implied_join_roles_for_object_reuse(self):
        analyzed = analyze(
            parse_query(
                "proc p write file f as e1 proc q read file f as e2 return p, q, f"
            )
        )
        assert ("e1", "dstid", "e2", "dstid", "f") in analyzed.implied_joins

    def test_pattern_entities_recorded(self):
        analyzed = analyze(parse_query("proc p read file f as e return p"))
        assert analyzed.pattern_entities["e"] == ("p", "f")


class TestSemanticErrors:
    def test_duplicate_event_id(self):
        with pytest.raises(TBQLSemanticError, match="duplicate event identifier"):
            analyze(parse_query("proc p read file f as e proc p write file f as e return p"))

    def test_subject_must_be_process(self):
        with pytest.raises(TBQLSemanticError, match="subject must be"):
            analyze(parse_query("file f read file g as e return f"))

    def test_inconsistent_entity_type_for_identifier(self):
        with pytest.raises(TBQLSemanticError, match="declared as"):
            analyze(
                parse_query(
                    "proc p read file x as e1 proc p connect ip x as e2 return p"
                )
            )

    def test_unknown_attribute_in_filter(self):
        with pytest.raises(TBQLSemanticError, match="does not exist"):
            analyze(parse_query('proc p[dstip = "1.2.3.4"] read file f as e return p'))

    def test_invalid_operation_for_object_type(self):
        with pytest.raises(TBQLSemanticError, match="not valid"):
            analyze(parse_query("proc p connect file f as e return p"))

    def test_unknown_operation(self):
        with pytest.raises(TBQLSemanticError, match="unknown operation"):
            analyze(parse_query("proc p teleport file f as e return p"))

    def test_with_clause_references_unknown_event(self):
        with pytest.raises(TBQLSemanticError, match="undeclared event"):
            analyze(parse_query("proc p read file f as e1 with e1 before e9 return p"))

    def test_temporal_self_relation_rejected(self):
        with pytest.raises(TBQLSemanticError, match="itself"):
            analyze(parse_query("proc p read file f as e1 with e1 before e1 return p"))

    def test_attribute_relation_unknown_attribute(self):
        with pytest.raises(TBQLSemanticError, match="unknown event attribute"):
            analyze(
                parse_query(
                    "proc p read file f as e1 proc q write file g as e2 "
                    "with e1.bogus = e2.srcid return p"
                )
            )

    def test_return_references_unknown_entity(self):
        with pytest.raises(TBQLSemanticError, match="undeclared entity"):
            analyze(parse_query("proc p read file f as e return z"))

    def test_return_unknown_attribute(self):
        with pytest.raises(TBQLSemanticError, match="does not exist"):
            analyze(parse_query("proc p read file f as e return f.exename"))

    def test_analyzer_reusable(self):
        analyzer = SemanticAnalyzer()
        first = analyzer.analyze(parse_query("proc p read file f as e return p"))
        second = analyzer.analyze(parse_query("proc q write file g as e return q"))
        assert set(first.entities) == {"p", "f"}
        assert set(second.entities) == {"q", "g"}


class TestPathLengthValidation:
    """Hop bounds are validated at analysis time with query-level messages."""

    @staticmethod
    def _path_query(min_length: int, max_length: int) -> "Query":
        from repro.auditing.entities import EntityType as ET
        from repro.tbql.ast import (
            EntityDeclaration,
            OperationExpression,
            PathPattern,
            Query,
            ReturnItem,
        )

        return Query(
            patterns=[
                PathPattern(
                    subject=EntityDeclaration(ET.PROCESS, "p"),
                    operation=OperationExpression(operations=("write",)),
                    obj=EntityDeclaration(ET.FILE, "f"),
                    event_id="e",
                    min_length=min_length,
                    max_length=max_length,
                )
            ],
            return_items=[ReturnItem("p"), ReturnItem("f")],
        )

    def test_valid_lengths_pass(self):
        analyzed = analyze(self._path_query(1, 4))
        assert "e" in analyzed.pattern_entities

    def test_zero_min_length_rejected(self):
        with pytest.raises(TBQLSemanticError, match="minimum length must be at least 1"):
            analyze(self._path_query(0, 3))

    def test_max_below_min_rejected(self):
        with pytest.raises(TBQLSemanticError, match="smaller than minimum length"):
            analyze(self._path_query(3, 2))
