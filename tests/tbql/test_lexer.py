"""Unit tests for the TBQL lexer."""

from __future__ import annotations

import pytest

from repro.errors import TBQLSyntaxError
from repro.tbql.lexer import TokenType, tokenize


def _types(source: str) -> list[TokenType]:
    return [token.type for token in tokenize(source)]


def _values(source: str) -> list[str]:
    return [token.value for token in tokenize(source)][:-1]  # drop EOF


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("PROC File Return DISTINCT")
        assert all(token.type is TokenType.KEYWORD for token in tokens[:-1])
        assert [token.value for token in tokens[:-1]] == ["proc", "file", "return", "distinct"]

    def test_identifiers(self):
        tokens = tokenize("p1 evt_2 myVar")
        assert all(token.type is TokenType.IDENTIFIER for token in tokens[:-1])

    def test_string_literals_double_and_single_quotes(self):
        assert _values('"%/bin/tar%"') == ["%/bin/tar%"]
        assert _values("'1.2.3.4'") == ["1.2.3.4"]

    def test_string_escape(self):
        assert _values(r'"a\"b"') == ['a"b']

    def test_unterminated_string_raises(self):
        with pytest.raises(TBQLSyntaxError, match="unterminated"):
            tokenize('"never closed')

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [token.value for token in tokens[:-1]] == ["42", "3.14"]
        assert tokens[0].type is TokenType.NUMBER

    def test_arrow_and_tilde(self):
        types = _types("p ~>(2~4)")
        assert TokenType.ARROW in types
        assert TokenType.TILDE in types

    def test_operators(self):
        values = _values("= != <= >= < > && ||")
        assert values == ["=", "!=", "<=", ">=", "<", ">", "&&", "||"]

    def test_brackets_and_punctuation(self):
        types = _types("[ ] ( ) , .")
        assert types[:-1] == [
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
        ]

    def test_comments_skipped(self):
        values = _values("proc p1 # trailing comment\nfile f1 // another")
        assert values == ["proc", "p1", "file", "f1"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("proc p1\nfile f1")
        file_token = tokens[2]
        assert file_token.value == "file"
        assert file_token.line == 2
        assert file_token.column == 1

    def test_unexpected_character(self):
        with pytest.raises(TBQLSyntaxError, match="unexpected character"):
            tokenize("proc p1 @ file")

    def test_eof_always_appended(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_figure2_query_tokenizes(self):
        source = 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1'
        values = _values(source)
        assert values[0] == "proc"
        assert "%/bin/tar%" in values
        assert values[-1] == "evt1"
