"""Rule-by-rule matrix for the TBQL static analyzer.

Every rule id in the catalog gets at least one positive case (a query that
fires it) and one negative case (a near-identical query that must not), plus
coverage of the policy machinery, report rendering and the analyzer API.
"""

from __future__ import annotations

import pytest

from repro.errors import TBQLAnalysisError, TBQLSemanticError
from repro.storage.loader import AuditStore
from repro.tbql.analysis import (
    RULES,
    AnalysisPolicy,
    Severity,
    StaticAnalyzer,
    analyze_query,
)
from repro.tbql.ast import (
    EntityDeclaration,
    EventPattern,
    OperationExpression,
    Query,
    ReturnItem,
    TimeWindow,
)
from repro.auditing.entities import EntityType
from repro.tbql.compiler.sql_compiler import SQLCompiler


def rules_for(text: str, **kwargs) -> tuple[str, ...]:
    return analyze_query(text, **kwargs).rules()


CLEAN = 'proc p["%sh%"] read file f["/etc/%"] as e1 return p, f'


# ---------------------------------------------------------------------------
# Satisfiability (TR101-TR106)
# ---------------------------------------------------------------------------


class TestSatisfiabilityRules:
    def test_tr101_contradictory_range(self):
        fired = rules_for(
            'proc p["x"] read file f[id > 100 and id < 10] as e1 return p, f'
        )
        assert "TR101" in fired

    def test_tr101_equality_outside_bounds(self):
        fired = rules_for(
            'proc p["x"] read file f[id = 5 and id > 100] as e1 return p, f'
        )
        assert "TR101" in fired

    def test_tr101_negative_satisfiable_range(self):
        fired = rules_for(
            'proc p["x"] read file f[id > 10 and id < 100] as e1 return p, f'
        )
        assert "TR101" not in fired

    def test_tr102_conflicting_equalities(self):
        fired = rules_for(
            'proc p["x"] read file f[name = "a" and name = "b"] as e1 return p, f'
        )
        assert "TR102" in fired

    def test_tr102_eq_and_neq_same_value(self):
        fired = rules_for(
            'proc p["x"] read file f[name = "a" and name != "a"] as e1 return p, f'
        )
        assert "TR102" in fired

    def test_tr102_negative_single_equality(self):
        fired = rules_for(
            'proc p["x"] read file f[name = "a"] as e1 return p, f'
        )
        assert "TR102" not in fired

    def test_tr103_empty_like_pattern(self):
        fired = rules_for(
            'proc p["x"] read file f[name like ""] as e1 return p, f'
        )
        assert "TR103" in fired

    def test_tr103_disjoint_like_patterns(self):
        fired = rules_for(
            'proc p["x"] read file f[name like "a%" and name like "b%"] as e1 '
            "return p, f"
        )
        assert "TR103" in fired

    def test_tr103_equality_contradicting_like(self):
        fired = rules_for(
            'proc p["x"] read file f[name = "abc" and name like "x%"] as e1 '
            "return p, f"
        )
        assert "TR103" in fired

    def test_tr103_negative_compatible_likes(self):
        fired = rules_for(
            'proc p["x"] read file f[name like "/etc/%" and name like "%.conf"] '
            "as e1 return p, f"
        )
        assert "TR103" not in fired

    def test_tr104_temporal_cycle(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2, e2 before e1 return p, f"
        )
        assert "TR104" in fired

    def test_tr104_negative_acyclic_chain(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2 return p, f"
        )
        assert "TR104" not in fired

    def test_tr105_windows_contradict_ordering(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 during (1000, 2000) '
            'proc p write file g["z"] as e2 during (100, 200) '
            "with e1 before e2 return p, f"
        )
        assert "TR105" in fired

    def test_tr105_negative_compatible_windows(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 during (100, 200) '
            'proc p write file g["z"] as e2 during (1000, 2000) '
            "with e1 before e2 return p, f"
        )
        assert "TR105" not in fired

    def test_tr105_degenerate_window_ast_only(self):
        # The parser rejects end < start, but synthesized/AST-built queries
        # can still carry one; the analyzer must catch it statically.
        query = Query(
            patterns=[
                EventPattern(
                    subject=EntityDeclaration(
                        entity_type=EntityType.PROCESS, identifier="p"
                    ),
                    operation=OperationExpression(operations=("read",)),
                    obj=EntityDeclaration(
                        entity_type=EntityType.FILE, identifier="f"
                    ),
                    event_id="e1",
                    window=TimeWindow(start=100, end=50),
                )
            ],
            return_items=[ReturnItem(identifier="p")],
        )
        report = analyze_query(query)
        assert "TR105" in report.rules()
        assert report.has_errors()

    def test_tr106_irreflexive_self_relation(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 with e1.id < e1.id return p, f'
        )
        assert "TR106" in fired

    def test_tr106_contradictory_relation_pair(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2, e1.id < e2.id, e1.id > e2.id return p, f"
        )
        assert "TR106" in fired

    def test_tr106_negative_consistent_relations(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2, e1.id < e2.id return p, f"
        )
        assert "TR106" not in fired


# ---------------------------------------------------------------------------
# Dead / redundant predicates (TR201-TR206)
# ---------------------------------------------------------------------------


class TestDeadCodeRules:
    def test_tr201_duplicate_filter_term(self):
        fired = rules_for(
            'proc p["x"] read file f[name = "a" and name = "a"] as e1 return p, f'
        )
        assert "TR201" in fired

    def test_tr201_negative_distinct_terms(self):
        fired = rules_for(
            'proc p["x"] read file f[name = "a" and id = 3] as e1 return p, f'
        )
        assert "TR201" not in fired

    def test_tr202_subsumed_bound(self):
        fired = rules_for(
            'proc p["x"] read file f[id > 10 and id > 5] as e1 return p, f'
        )
        assert "TR202" in fired

    def test_tr202_tautological_self_relation(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 with e1.id = e1.id return p, f'
        )
        assert "TR202" in fired

    def test_tr202_negative_tight_bounds(self):
        fired = rules_for(
            'proc p["x"] read file f[id > 10 and id < 20] as e1 return p, f'
        )
        assert "TR202" not in fired

    def test_tr203_duplicate_temporal_relation(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2, e1 before e2 return p, f"
        )
        assert "TR203" in fired

    def test_tr203_relation_implied_by_entity_reuse(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2, e1.srcid = e2.srcid return p, f"
        )
        assert "TR203" in fired

    def test_tr203_negative_distinct_relations(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2 return p, f"
        )
        assert "TR203" not in fired

    def test_tr204_transitively_implied_before(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            'proc p create file h["w"] as e3 '
            "with e1 before e2, e2 before e3, e1 before e3 return p, f"
        )
        assert "TR204" in fired

    def test_tr204_negative_minimal_chain(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            'proc p create file h["w"] as e3 '
            "with e1 before e2, e2 before e3 return p, f"
        )
        assert "TR204" not in fired

    def test_tr205_unreferenced_entity(self):
        fired = rules_for('proc p["x"] read file f as e1 return p')
        assert "TR205" in fired

    def test_tr205_negative_entity_returned(self):
        assert "TR205" not in rules_for(CLEAN)

    def test_tr206_repeated_filter_across_patterns(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p["x"] write file g["z"] '
            "as e2 with e1 before e2 return p, f"
        )
        assert "TR206" in fired

    def test_tr206_negative_filter_stated_once(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2 return p, f"
        )
        assert "TR206" not in fired


# ---------------------------------------------------------------------------
# Cost / cardinality (TR301-TR304)
# ---------------------------------------------------------------------------


class TestCostRules:
    def test_tr301_unwindowable_standing_query(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "return p, f"
        )
        assert "TR301" in fired

    def test_tr301_negative_with_temporal_sink(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
            "with e1 before e2 return p, f"
        )
        assert "TR301" not in fired

    def test_tr302_unanchored_multi_hop_path(self):
        fired = rules_for("proc p ~>(1~4)[read] file f return p, f")
        assert "TR302" in fired

    def test_tr302_negative_anchored_path(self):
        fired = rules_for('proc p["%sh%"] ~>(1~4)[read] file f return p, f')
        assert "TR302" not in fired

    def test_tr303_cross_product_groups(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 '
            'proc q["z"] write file g["w"] as e2 return p, q'
        )
        assert "TR303" in fired

    def test_tr303_negative_connected_by_relation(self):
        fired = rules_for(
            'proc p["x"] read file f["y"] as e1 '
            'proc q["z"] write file g["w"] as e2 '
            "with e1 before e2 return p, q"
        )
        assert "TR303" not in fired

    def test_tr304_full_scan_against_store_statistics(self, figure2_store):
        policy = AnalysisPolicy(scan_row_threshold=1)
        report = analyze_query(
            "proc p read file f as e1 return p, f",
            store=figure2_store,
            policy=policy,
        )
        assert "TR304" in report.rules()
        [diagnostic] = [d for d in report if d.rule == "TR304"]
        assert "stored events" in diagnostic.message

    def test_tr304_negative_filtered_pattern(self, figure2_store):
        policy = AnalysisPolicy(scan_row_threshold=1)
        report = analyze_query(CLEAN, store=figure2_store, policy=policy)
        assert "TR304" not in report.rules()

    def test_tr304_negative_without_store(self):
        policy = AnalysisPolicy(scan_row_threshold=1)
        report = analyze_query(
            "proc p read file f as e1 return p, f", policy=policy
        )
        assert "TR304" not in report.rules()


# ---------------------------------------------------------------------------
# Portability (TR401-TR403)
# ---------------------------------------------------------------------------


class _ExplodingSQLCompiler(SQLCompiler):
    def compile(self, pattern, window=None):  # noqa: ARG002 - signature match
        raise RuntimeError("injected compiler failure")


class TestPortabilityRules:
    def test_tr401_path_pattern_is_graph_bound(self):
        fired = rules_for('proc p["%sh%"] ~>(1~2)[read] file f["/etc/%"] return p, f')
        assert "TR401" in fired

    def test_tr401_negative_event_pattern(self):
        assert "TR401" not in rules_for(CLEAN)

    def test_tr402_negated_path_operation_is_error(self):
        report = analyze_query(
            'proc p["x"] ~>(1~2)[not read] file f["y"] return p, f'
        )
        [diagnostic] = [d for d in report if d.rule == "TR402"]
        assert diagnostic.severity is Severity.ERROR

    def test_tr402_negated_event_operation_warns_on_relational(self):
        report = analyze_query('proc p["x"] not read file f["y"] as e1 return p, f')
        [diagnostic] = [d for d in report if d.rule == "TR402"]
        assert diagnostic.severity is Severity.WARNING

    def test_tr402_negated_event_operation_errors_on_graph_backend(self):
        report = analyze_query(
            'proc p["x"] not read file f["y"] as e1 return p, f', backend="graph"
        )
        [diagnostic] = [d for d in report if d.rule == "TR402"]
        assert diagnostic.severity is Severity.ERROR

    def test_tr402_negative_plain_operation(self):
        assert "TR402" not in rules_for(CLEAN)

    def test_tr403_compiler_failure_surfaces(self):
        analyzer = StaticAnalyzer(sql_compiler=_ExplodingSQLCompiler())
        report = analyzer.analyze(CLEAN)
        [diagnostic] = [d for d in report if d.rule == "TR403"]
        assert diagnostic.severity is Severity.ERROR
        assert "injected compiler failure" in diagnostic.message

    def test_tr403_negative_default_compilers(self):
        assert "TR403" not in rules_for(CLEAN)


# ---------------------------------------------------------------------------
# Policy, report and API behavior
# ---------------------------------------------------------------------------


class TestPolicyAndReport:
    BAD = 'proc p["x"] read file f[id > 100 and id < 10] as e1 return p, f'

    def test_clean_query_has_no_findings(self):
        report = analyze_query(CLEAN)
        assert len(report) == 0
        assert not report.has_errors()
        assert report.render() == "no findings"

    def test_every_rule_has_a_catalog_entry(self):
        assert set(RULES) == {
            "TR101", "TR102", "TR103", "TR104", "TR105", "TR106",
            "TR201", "TR202", "TR203", "TR204", "TR205", "TR206",
            "TR301", "TR302", "TR303", "TR304",
            "TR401", "TR402", "TR403",
        }
        for rule, spec in RULES.items():
            assert spec.rule == rule
            assert spec.title

    def test_raise_for_errors_carries_diagnostics(self):
        report = analyze_query(self.BAD)
        with pytest.raises(TBQLAnalysisError, match="TR101") as excinfo:
            report.raise_for_errors()
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].rule == "TR101"

    def test_lenient_policy_demotes_errors(self):
        report = analyze_query(self.BAD, policy=AnalysisPolicy.lenient())
        assert "TR101" in report.rules()
        assert not report.has_errors()
        report.raise_for_errors()  # must not raise

    def test_disabled_rule_is_dropped(self):
        policy = AnalysisPolicy(disabled=frozenset({"TR101"}))
        report = analyze_query(self.BAD, policy=policy)
        assert "TR101" not in report.rules()

    def test_severity_override_promotes_rule(self):
        policy = AnalysisPolicy(severity_overrides={"TR205": Severity.ERROR})
        report = analyze_query('proc p["x"] read file f as e1 return p', policy=policy)
        assert report.has_errors()
        assert report.errors[0].rule == "TR205"

    def test_diagnostics_sorted_errors_first(self):
        text = (
            'proc p read file f[id > 100 and id < 10] as e1 '
            "proc q write file g as e2 return p, q"
        )
        report = analyze_query(text)
        severities = [d.severity.rank for d in report]
        assert severities == sorted(severities)
        assert report.diagnostics[0].severity is Severity.ERROR

    def test_diagnostic_spans_point_into_source(self):
        report = analyze_query(self.BAD)
        [diagnostic] = [d for d in report if d.rule == "TR101"]
        assert diagnostic.span is not None
        assert diagnostic.span.line == 1
        assert diagnostic.span.column > 1
        rendered = diagnostic.render("query.tbql")
        assert rendered.startswith("query.tbql:1:")
        assert "error[TR101]" in rendered

    def test_report_to_dict_shape(self):
        payload = analyze_query(self.BAD).to_dict()
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["rule"] == "TR101"
        assert payload["diagnostics"][0]["severity"] == "error"

    def test_semantic_errors_propagate(self):
        analyzer = StaticAnalyzer()
        with pytest.raises(TBQLSemanticError):
            analyzer.analyze("proc p exec file f as e1 return p")

    def test_analyzer_accepts_ast_and_text(self):
        from repro.tbql.parser import parse_query

        text_report = analyze_query(self.BAD)
        ast_report = analyze_query(parse_query(self.BAD))
        assert text_report.rules() == ast_report.rules()

    def test_store_statistics_tolerates_missing_api(self):
        from repro.tbql.analysis.cost import store_statistics

        assert store_statistics(None) is None
        assert store_statistics(object()) is None
        assert store_statistics(AuditStore()) is not None
