"""Tests for canonical TBQL query form and the corpus dedup key."""

from __future__ import annotations

from repro.auditing.entities import EntityType
from repro.tbql.ast import (
    AttributeComparison,
    EntityDeclaration,
    EventPattern,
    FilterExpression,
    FilterOperator,
    OperationExpression,
    Query,
    ReturnItem,
    TemporalRelation,
)
from repro.tbql.canonical import canonical_query_key, canonicalize_query
from repro.tbql.formatter import format_query
from repro.tbql.parser import parse_query


def _entity(entity_type: EntityType, identifier: str, value: str) -> EntityDeclaration:
    return EntityDeclaration(
        entity_type=entity_type,
        identifier=identifier,
        filter=FilterExpression.leaf(
            AttributeComparison(attribute="", operator=FilterOperator.LIKE, value=value)
        ),
    )


def _query(subject_id: str = "p1", object_id: str = "f1", event_id: str = "evt1") -> Query:
    query = Query(distinct=True)
    query.patterns.append(
        EventPattern(
            subject=_entity(EntityType.PROCESS, subject_id, "%/bin/tar%"),
            operation=OperationExpression(operations=("read",)),
            obj=_entity(EntityType.FILE, object_id, "%/etc/passwd%"),
            event_id=event_id,
        )
    )
    query.return_items.extend(
        [ReturnItem(identifier=subject_id), ReturnItem(identifier=object_id)]
    )
    return query


class TestCanonicalizeQuery:
    def test_identifiers_renamed_in_first_use_order(self):
        canonical = canonicalize_query(_query(subject_id="p9", object_id="f7", event_id="evtX"))
        pattern = canonical.patterns[0]
        assert pattern.subject.identifier == "p1"
        assert pattern.obj.identifier == "f1"
        assert pattern.event_id == "evt1"
        assert [item.identifier for item in canonical.return_items] == ["p1", "f1"]

    def test_equivalent_queries_up_to_naming_share_key(self):
        assert canonical_query_key(_query()) == canonical_query_key(
            _query(subject_id="p42", object_id="f13", event_id="step_final")
        )

    def test_different_filters_get_different_keys(self):
        other = _query()
        other.patterns[0] = EventPattern(
            subject=_entity(EntityType.PROCESS, "p1", "%/bin/cp%"),
            operation=OperationExpression(operations=("read",)),
            obj=_entity(EntityType.FILE, "f1", "%/etc/passwd%"),
            event_id="evt1",
        )
        assert canonical_query_key(_query()) != canonical_query_key(other)

    def test_like_normalized_to_eq(self):
        canonical = canonicalize_query(_query())
        comparison = canonical.patterns[0].subject.filter.comparison
        assert comparison.operator is FilterOperator.EQ
        assert comparison.value == "%/bin/tar%"

    def test_case_invariant_like_normalized_to_eq(self):
        query = _query()
        query.patterns[0] = EventPattern(
            subject=_entity(EntityType.PROCESS, "p1", "%/bin/tar%"),
            operation=OperationExpression(operations=("connect",)),
            obj=_entity(EntityType.NETWORK, "i1", "198.51.100.23"),
            event_id="evt1",
        )
        canonical = canonicalize_query(query)
        assert canonical.patterns[0].obj.filter.comparison.operator is FilterOperator.EQ

    def test_alphabetic_non_wildcard_like_preserved(self):
        """LIKE without wildcards matches case-insensitively; = does not —
        canonicalization must not change what the registered hunt matches."""
        query = _query()
        query.patterns[0] = EventPattern(
            subject=_entity(EntityType.PROCESS, "p1", "/bin/Tar"),
            operation=OperationExpression(operations=("read",)),
            obj=_entity(EntityType.FILE, "f1", "%/etc/passwd%"),
            event_id="evt1",
        )
        canonical = canonicalize_query(query)
        assert canonical.patterns[0].subject.filter.comparison.operator is FilterOperator.LIKE

    def test_after_relations_normalized_and_sorted(self):
        query = _query()
        query.patterns.append(
            EventPattern(
                subject=_entity(EntityType.PROCESS, "p1", "%/bin/tar%"),
                operation=OperationExpression(operations=("write",)),
                obj=_entity(EntityType.FILE, "f2", "%/tmp/out%"),
                event_id="evt2",
            )
        )
        query.temporal_relations.append(
            TemporalRelation(left="evt2", relation="after", right="evt1")
        )
        canonical = canonicalize_query(query)
        assert canonical.temporal_relations == [
            TemporalRelation(left="evt1", relation="before", right="evt2")
        ]

    def test_combinator_children_sorted(self):
        first = AttributeComparison(attribute="name", operator=FilterOperator.EQ, value="b")
        second = AttributeComparison(attribute="name", operator=FilterOperator.EQ, value="a")
        unsorted_filter = FilterExpression.combine(
            "or", [FilterExpression.leaf(first), FilterExpression.leaf(second)]
        )
        query = _query()
        query.patterns[0] = EventPattern(
            subject=EntityDeclaration(
                entity_type=EntityType.PROCESS, identifier="p1", filter=unsorted_filter
            ),
            operation=OperationExpression(operations=("read",)),
            obj=_entity(EntityType.FILE, "f1", "%/etc/passwd%"),
            event_id="evt1",
        )
        canonical = canonicalize_query(query)
        values = [
            child.comparison.value
            for child in canonical.patterns[0].subject.filter.children
        ]
        assert values == ["a", "b"]

    def test_canonicalization_is_idempotent(self):
        query = _query(subject_id="px", object_id="fy", event_id="e")
        canonical = canonicalize_query(query)
        assert canonicalize_query(canonical) == canonical
        assert canonical_query_key(canonical) == canonical_query_key(query)

    def test_key_embeds_constraint_shapes(self):
        key = canonical_query_key(_query())
        assert "-- shapes:" in key
        assert "evt1,False,False,False" in key

    def test_canonical_form_round_trips_through_parser(self):
        canonical = canonicalize_query(_query(subject_id="p3", object_id="f9"))
        assert parse_query(format_query(canonical)) == canonical
