"""Formatter round-trips preserve static-analysis diagnostics.

For every parseable diagnostic-triggering construct in the rule matrix, the
formatted text must parse back to a query whose analysis yields the same
diagnostics (rule, severity, message, event id — spans may legitimately move
because formatting changes source positions).
"""

from __future__ import annotations

import pytest

from repro.tbql.analysis import analyze_query
from repro.tbql.formatter import format_query
from repro.tbql.parser import parse_query

#: One parseable trigger per rule id (TR304 needs store statistics and TR403
#: an injected failing compiler, so their triggers are exercised in
#: test_analysis.py instead; TR105's AST-only degenerate-window variant is
#: unparseable by construction).
TRIGGERS = {
    "TR101": 'proc p["x"] read file f[id > 100 and id < 10] as e1 return p, f',
    "TR102": 'proc p["x"] read file f[name = "a" and name = "b"] as e1 return p, f',
    "TR103": 'proc p["x"] read file f[name like "a%" and name like "b%"] as e1 return p, f',
    "TR104": (
        'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
        "with e1 before e2, e2 before e1 return p, f"
    ),
    "TR105": (
        'proc p["x"] read file f["y"] as e1 during (1000, 2000) '
        'proc p write file g["z"] as e2 during (100, 200) '
        "with e1 before e2 return p, f"
    ),
    "TR106": 'proc p["x"] read file f["y"] as e1 with e1.id < e1.id return p, f',
    "TR201": 'proc p["x"] read file f[name = "a" and name = "a"] as e1 return p, f',
    "TR202": 'proc p["x"] read file f[id > 10 and id > 5] as e1 return p, f',
    "TR203": (
        'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
        "with e1 before e2, e1 before e2 return p, f"
    ),
    "TR204": (
        'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
        'proc p create file h["w"] as e3 '
        "with e1 before e2, e2 before e3, e1 before e3 return p, f"
    ),
    "TR205": 'proc p["x"] read file f as e1 return p',
    "TR206": (
        'proc p["x"] read file f["y"] as e1 proc p["x"] write file g["z"] as e2 '
        "with e1 before e2 return p, f"
    ),
    "TR301": (
        'proc p["x"] read file f["y"] as e1 proc p write file g["z"] as e2 '
        "return p, f"
    ),
    "TR302": "proc p ~>(1~4)[read] file f return p, f",
    "TR303": (
        'proc p["x"] read file f["y"] as e1 '
        'proc q["z"] write file g["w"] as e2 return p, q'
    ),
    "TR401": 'proc p["%sh%"] ~>(1~2)[read] file f["/etc/%"] return p, f',
    "TR402": 'proc p["x"] not read file f["y"] as e1 return p, f',
}

CLEAN_QUERIES = [
    'proc p["%sh%"] read file f["/etc/%"] as e1 return p, f',
    (
        'proc p["%scp%"] read file f["/var/log/%"] as e1 '
        'proc p send ip x["10.0.0.%"] as e2 with e1 before e2 return distinct p, f, x'
    ),
    'proc p[exename like "%sh%"] read or write file f["/etc/passwd"] as e1 return p, f',
]


def _fingerprint(report):
    """Diagnostics without source spans (formatting may move positions)."""
    return [
        (d.rule, d.severity.value, d.message, d.event_id, d.hint) for d in report
    ]


@pytest.mark.parametrize("rule", sorted(TRIGGERS))
def test_roundtrip_preserves_diagnostics(rule):
    source = TRIGGERS[rule]
    original = analyze_query(source)
    assert rule in original.rules(), f"trigger for {rule} no longer fires it"

    formatted = format_query(parse_query(source))
    reparsed = parse_query(formatted)
    assert reparsed == parse_query(source)

    roundtripped = analyze_query(reparsed)
    assert _fingerprint(roundtripped) == _fingerprint(original)


@pytest.mark.parametrize("source", CLEAN_QUERIES)
def test_roundtrip_of_clean_queries_stays_clean(source):
    assert len(analyze_query(source)) == 0
    formatted = format_query(parse_query(source))
    assert len(analyze_query(formatted)) == 0


@pytest.mark.parametrize("rule", sorted(TRIGGERS))
def test_roundtrip_diagnostics_keep_spans_resolvable(rule):
    """Diagnostics on formatted text still carry spans inside that text."""
    formatted = format_query(parse_query(TRIGGERS[rule]))
    lines = formatted.splitlines()
    for diagnostic in analyze_query(formatted):
        if diagnostic.span is None:
            continue
        assert 1 <= diagnostic.span.line <= len(lines)
        assert 1 <= diagnostic.span.column <= len(lines[diagnostic.span.line - 1]) + 1
