"""Unit tests for the SQL/Cypher compilers and the execution scheduler."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType
from repro.storage.relational.sqlgen import render_select
from repro.tbql.ast import FilterOperator
from repro.tbql.compiler.cypher_compiler import CypherCompiler
from repro.tbql.compiler.sql_compiler import SQLCompiler
from repro.tbql.filters import (
    comparison_to_expression,
    constraint_count,
    filter_to_expression,
    filter_to_predicate,
)
from repro.tbql.ast import AttributeComparison, FilterExpression
from repro.tbql.parser import parse_query
from repro.tbql.scheduler import ExecutionScheduler, pruning_score


def _first_pattern(source: str):
    return parse_query(source).patterns[0]


class TestFilterBridging:
    def test_default_attribute_resolution(self):
        comparison = AttributeComparison(attribute="", operator=FilterOperator.EQ, value="%/bin/tar%")
        expression = comparison_to_expression(comparison, EntityType.PROCESS)
        assert expression.evaluate({"exename": "/bin/tar"})
        assert not expression.evaluate({"exename": "/bin/cat"})

    def test_wildcard_value_uses_like_even_with_eq(self):
        comparison = AttributeComparison(attribute="name", operator=FilterOperator.EQ, value="%upload%")
        expression = comparison_to_expression(comparison, EntityType.FILE)
        assert expression.evaluate({"name": "/tmp/upload.tar"})

    def test_numeric_comparison(self):
        comparison = AttributeComparison(attribute="pid", operator=FilterOperator.GT, value=100)
        expression = comparison_to_expression(comparison, EntityType.PROCESS)
        assert expression.evaluate({"pid": 101})
        assert not expression.evaluate({"pid": 99})

    def test_filter_expression_and(self):
        pattern = _first_pattern('proc p[pid > 100 and exename = "%sh%"] read file f as e return p')
        expression = filter_to_expression(pattern.subject.filter, EntityType.PROCESS)
        assert expression.evaluate({"pid": 200, "exename": "/bin/sh"})
        assert not expression.evaluate({"pid": 50, "exename": "/bin/sh"})

    def test_filter_expression_or(self):
        pattern = _first_pattern('proc p["%tar%" or "%curl%"] read file f as e return p')
        expression = filter_to_expression(pattern.subject.filter, EntityType.PROCESS)
        assert expression.evaluate({"exename": "/usr/bin/curl"})
        assert expression.evaluate({"exename": "/bin/tar"})
        assert not expression.evaluate({"exename": "/usr/bin/gpg"})

    def test_none_filter_is_true(self):
        expression = filter_to_expression(None, EntityType.FILE)
        assert expression.evaluate({})

    def test_predicate_handles_missing_attribute(self):
        pattern = _first_pattern('proc p["%tar%"] read file f as e return p')
        predicate = filter_to_predicate(pattern.subject.filter, EntityType.PROCESS)
        assert not predicate({})

    def test_constraint_count(self):
        pattern = _first_pattern('proc p[pid > 100 and exename = "%sh%"] read file f["%x%"] as e return p')
        assert constraint_count(pattern.subject.filter) == 2
        assert constraint_count(pattern.obj.filter) == 1
        assert constraint_count(None) == 0


class TestSQLCompiler:
    def test_joins_entities_with_events(self):
        pattern = _first_pattern('proc p["%tar%"] read file f["%passwd%"] as e return p, f')
        compiled = SQLCompiler().compile(pattern)
        sql = render_select(compiled.query)
        assert "FROM events e, entities s, entities o" in sql
        assert "e.srcid = s.id" in sql and "e.dstid = o.id" in sql
        assert "s.type = 'process'" in sql and "o.type = 'file'" in sql
        assert "optype = 'read'" in sql

    def test_event_type_filter_matches_object(self):
        pattern = _first_pattern('proc p connect ip i["1.2.3.4"] as e return p')
        sql = render_select(SQLCompiler().compile(pattern).query)
        assert "eventtype = 'network'" in sql

    def test_multiple_operations_render_as_in_list(self):
        pattern = _first_pattern("proc p read or write file f as e return p")
        sql = render_select(SQLCompiler().compile(pattern).query)
        assert "IN ('read', 'write')" in sql

    def test_time_window_renders_between(self):
        pattern = _first_pattern("proc p read file f as e during (100, 200) return p")
        sql = render_select(SQLCompiler().compile(pattern).query)
        assert "BETWEEN 100 AND 200" in sql

    def test_id_constraints_added(self):
        pattern = _first_pattern("proc p read file f as e return p")
        compiled = SQLCompiler().compile(pattern, subject_id_constraint=[5, 3], object_id_constraint=[7])
        sql = render_select(compiled.query)
        assert "s.id IN (3, 5)" in sql
        assert "o.id IN (7)" in sql

    def test_projection_exposes_entity_and_event_columns(self):
        pattern = _first_pattern("proc p read file f as e return p")
        compiled = SQLCompiler().compile(pattern)
        names = {output.output_name for output in compiled.query.projection}
        assert {"event.id", "subject.exename", "object.name", "event.starttime"} <= names


class TestCypherCompiler:
    def test_path_pattern_lengths(self):
        pattern = _first_pattern("proc p ~>(2~4)[read] file f as e return p")
        compiled = CypherCompiler().compile_path(pattern)
        assert compiled.graph_pattern.min_length == 2
        assert compiled.graph_pattern.max_length == 4
        assert compiled.graph_pattern.final_edge.relationship == "read"
        assert "MATCH" in compiled.cypher_text

    def test_event_pattern_is_single_hop(self):
        pattern = _first_pattern('proc p["%tar%"] read file f as e return p')
        compiled = CypherCompiler().compile_event(pattern)
        assert compiled.graph_pattern.max_length == 1
        assert compiled.graph_pattern.source.label == "process"
        assert compiled.graph_pattern.target.label == "file"

    def test_node_predicate_applies_filter(self):
        from repro.storage.graph.model import Node

        pattern = _first_pattern('proc p["%tar%"] read file f as e return p')
        compiled = CypherCompiler().compile_event(pattern)
        matching = Node(node_id=1, label="process", properties={"exename": "/bin/tar"})
        not_matching = Node(node_id=2, label="process", properties={"exename": "/bin/cat"})
        assert compiled.graph_pattern.source.matches(matching)
        assert not compiled.graph_pattern.source.matches(not_matching)

    def test_id_constraint_restricts_nodes(self):
        from repro.storage.graph.model import Node

        pattern = _first_pattern("proc p read file f as e return p")
        compiled = CypherCompiler().compile_event(pattern, subject_id_constraint=[10])
        allowed = Node(node_id=10, label="process", properties={"exename": "/bin/x"})
        denied = Node(node_id=11, label="process", properties={"exename": "/bin/x"})
        assert compiled.graph_pattern.source.matches(allowed)
        assert not compiled.graph_pattern.source.matches(denied)

    def test_window_constrains_edges(self):
        from repro.storage.graph.model import Edge

        pattern = _first_pattern("proc p read file f as e during (100, 200) return p")
        compiled = CypherCompiler().compile_event(pattern)
        inside = Edge(1, 1, 2, "read", {"starttime": 150, "endtime": 160})
        outside = Edge(2, 1, 2, "read", {"starttime": 500, "endtime": 600})
        assert compiled.graph_pattern.final_edge.matches(inside)
        assert not compiled.graph_pattern.final_edge.matches(outside)


class TestScheduler:
    def test_pruning_score_counts_constraints(self):
        constrained = _first_pattern('proc p["%tar%"] read file f["%passwd%"] as e return p')
        bare = _first_pattern("proc p read file f as e return p")
        assert pruning_score(constrained) > pruning_score(bare)

    def test_path_patterns_penalised(self):
        event = _first_pattern('proc p["%tar%"] read file f["%x%"] as e return p')
        path = _first_pattern('proc p["%tar%"] ~>(1~4)[read] file f["%x%"] as e return p')
        assert pruning_score(event) > pruning_score(path)

    def test_shorter_paths_score_higher(self):
        short = _first_pattern('proc p["%tar%"] ~>(1~2)[read] file f as e return p')
        long = _first_pattern('proc p["%tar%"] ~>(1~6)[read] file f as e return p')
        assert pruning_score(short) > pruning_score(long)

    def test_most_constrained_pattern_runs_first(self):
        query = parse_query(
            "proc p read file f as e1 "
            'proc q["%curl%"] connect ip i["1.2.3.4"] as e2 '
            "return p, q"
        )
        schedule = ExecutionScheduler().schedule(query)
        assert schedule[0].pattern.event_id == "e2"

    def test_connected_patterns_preferred_and_constrained(self):
        query = parse_query(
            'proc p["%tar%"] read file f["%passwd%"] as e1 '
            "proc p write file g as e2 "
            'proc z["%gpg%"] read file w as e3 '
            "return p, f, g, z, w"
        )
        schedule = ExecutionScheduler().schedule(query)
        assert schedule[0].pattern.event_id == "e1"
        second = schedule[1]
        # e2 shares p with e1, so it should run second with p constrained,
        # even though e3 has a higher raw score than e2.
        assert second.pattern.event_id == "e2"
        assert "p" in second.constrained_identifiers

    def test_unoptimized_schedule_keeps_declaration_order(self):
        query = parse_query(
            "proc p read file f as e1 "
            'proc q["%curl%"] connect ip i["1.2.3.4"] as e2 '
            "return p, q"
        )
        schedule = ExecutionScheduler().schedule_unoptimized(query)
        assert [step.pattern.event_id for step in schedule] == ["e1", "e2"]
        assert all(step.constrained_identifiers == () for step in schedule)

    def test_every_pattern_scheduled_exactly_once(self):
        from repro.data import FIGURE2_REPORT
        from repro.nlp.extractor import ThreatBehaviorExtractor
        from repro.tbql.synthesis import QuerySynthesizer

        graph = ThreatBehaviorExtractor().extract(FIGURE2_REPORT.text).graph
        query = QuerySynthesizer().synthesize(graph)
        schedule = ExecutionScheduler().schedule(query)
        assert sorted(step.pattern.event_id for step in schedule) == sorted(
            pattern.event_id for pattern in query.patterns
        )

    def test_duplicate_equal_patterns_break_ties_by_declaration_order(self):
        """Regression: `list.index` found the *first equal* pattern, so a
        duplicate declared last inherited its twin's declaration index and
        stole an earlier pattern's tie-break."""
        from repro.tbql.ast import Query

        base = parse_query(
            'proc p["%tar%"] read file x["%one%"] as e1 '
            'proc p["%tar%"] read file y["%two%"] as e2 '
            "return p, x, y"
        )
        first, second = base.patterns
        duplicate_of_first = parse_query(
            'proc p["%tar%"] read file x["%one%"] as e1 return p'
        ).patterns[0]
        assert duplicate_of_first == first and duplicate_of_first is not first

        query = Query(
            patterns=[first, second, duplicate_of_first],
            return_items=base.return_items,
        )
        schedule = ExecutionScheduler().schedule(query)
        assert len(schedule) == 3
        # All three patterns share `p` and tie on score, so after `first`
        # runs the tie between `second` and the duplicate must fall to
        # declaration order — the duplicate is scheduled last, not promoted
        # to its twin's declaration index.
        assert [id(step.pattern) for step in schedule] == [
            id(first),
            id(second),
            id(duplicate_of_first),
        ]
