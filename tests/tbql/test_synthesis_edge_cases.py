"""Synthesis edge cases: empty graphs, fully screened graphs, round-trips."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ThreatRaptor
from repro.data.osctireports import (
    PHISHING_INFRASTRUCTURE_REPORT,
    auditable_reports,
    corpus_variants,
)
from repro.errors import SynthesisError
from repro.nlp.behavior_graph import BehaviorEdge, BehaviorNode, ThreatBehaviorGraph
from repro.nlp.ioc import IOC, IOCType
from repro.tbql.canonical import canonical_query_key, canonicalize_query
from repro.tbql.formatter import format_query
from repro.tbql.parser import parse_query
from repro.tbql.synthesis import QuerySynthesizer


def _node(text: str, ioc_type: IOCType) -> BehaviorNode:
    return BehaviorNode(ioc=IOC(text=text, ioc_type=ioc_type))


class TestSynthesisFailureModes:
    def test_empty_behavior_graph_raises(self):
        with pytest.raises(SynthesisError):
            QuerySynthesizer().synthesize(ThreatBehaviorGraph())

    def test_graph_with_nodes_but_no_edges_raises(self):
        graph = ThreatBehaviorGraph(nodes=[_node("/bin/tar", IOCType.FILEPATH)])
        with pytest.raises(SynthesisError):
            QuerySynthesizer().synthesize(graph)

    def test_all_screened_out_graph_raises(self):
        """URL/hash-only graphs screen down to nothing auditable."""
        url = _node("http://evil.example.com/p.php", IOCType.URL)
        digest = _node("9e107d9d372bb6826bd81d3542a419d6", IOCType.HASH)
        graph = ThreatBehaviorGraph(
            nodes=[url, digest],
            edges=[BehaviorEdge(subject=url, verb="write", obj=digest, sequence=1)],
        )
        with pytest.raises(SynthesisError, match="screening"):
            QuerySynthesizer().synthesize(graph)

    def test_unauditable_report_screens_to_nothing(self):
        raptor = ThreatRaptor()
        graph = raptor.extract_behavior_graph(PHISHING_INFRASTRUCTURE_REPORT.text).graph
        with pytest.raises(SynthesisError):
            raptor.synthesize_query(graph)

    def test_mixed_graph_keeps_only_auditable_edges(self):
        process = _node("/bin/tar", IOCType.FILEPATH)
        target = _node("/etc/passwd", IOCType.FILEPATH)
        url = _node("http://evil.example.com/p.php", IOCType.URL)
        graph = ThreatBehaviorGraph(
            nodes=[process, target, url],
            edges=[
                BehaviorEdge(subject=process, verb="read", obj=target, sequence=1),
                BehaviorEdge(subject=process, verb="connect", obj=url, sequence=2),
            ],
        )
        report = QuerySynthesizer().synthesize_with_report(graph)
        assert report.kept_edges == 1
        assert report.dropped_edges == 1
        assert [node.ioc.ioc_type for node in report.screened_nodes] == [IOCType.URL]


class TestCorpusQueryRoundTrip:
    @pytest.mark.parametrize("report", auditable_reports(), ids=lambda r: r.name)
    def test_synthesized_canonical_query_round_trips_identically(self, report):
        """format_query → parser reproduces the canonical AST exactly."""
        raptor = ThreatRaptor()
        query = raptor.synthesize_query(raptor.extract_behavior_graph(report.text).graph)
        canonical = canonicalize_query(query)
        assert parse_query(format_query(canonical)) == canonical

    def test_corpus_deduped_queries_round_trip_to_same_key(self):
        raptor = ThreatRaptor()
        for variant in corpus_variants(6, seed=17):
            query = raptor.synthesize_query(
                raptor.extract_behavior_graph(variant.text).graph
            )
            canonical = canonicalize_query(query)
            reparsed = parse_query(format_query(canonical))
            assert canonical_query_key(reparsed) == canonical_query_key(query)
