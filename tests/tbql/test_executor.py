"""Integration tests for the TBQL execution engine against simulated audit data."""

from __future__ import annotations

import pytest

from repro.auditing.workload.attacks import Figure2DataLeakageChain
from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import SoftwareUpdateWorkload
from repro.errors import ExecutionError, TBQLAnalysisError
from repro.storage.loader import AuditStore
from repro.tbql.executor import TBQLExecutionEngine, execute_query

FIG2_QUERY = """
proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4["%/usr/bin/curl%"] connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5,
     evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1
"""


@pytest.fixture(scope="module")
def store():
    builder = ScenarioBuilder(seed=17)
    SoftwareUpdateWorkload(packages=4).generate(builder)
    attack = Figure2DataLeakageChain()
    attack.generate(builder)
    SoftwareUpdateWorkload(packages=3).generate(builder)
    audit_store = AuditStore()
    audit_store.load_trace(builder.build())
    return audit_store


@pytest.fixture(scope="module")
def attack_ground_truth():
    builder = ScenarioBuilder(seed=17)
    SoftwareUpdateWorkload(packages=4).generate(builder)
    attack = Figure2DataLeakageChain()
    attack.generate(builder)
    return attack.ground_truth


class TestSinglePatternExecution:
    def test_single_event_pattern(self, store):
        result = execute_query(
            store, 'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return p, f'
        )
        assert len(result) == 1
        assert result.rows[0] == ("/bin/tar", "/etc/passwd")

    def test_wildcard_matches_benign_and_malicious(self, store):
        result = execute_query(store, 'proc p["%/bin/tar%"] read file f as e return distinct f')
        names = set(result.column("f.name"))
        assert "/etc/passwd" in names
        assert any("pkg" in name for name in names)  # benign apt archives

    def test_no_match_returns_empty(self, store):
        result = execute_query(store, 'proc p["%nonexistent%"] read file f as e return p')
        assert len(result) == 0
        assert not result

    def test_return_attribute_projection(self, store):
        result = execute_query(
            store, 'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return p.pid, f.name'
        )
        assert result.columns == ("p.pid", "f.name")
        assert result.rows[0][1] == "/etc/passwd"

    def test_ip_pattern(self, store):
        result = execute_query(
            store, 'proc p connect ip i["192.168.29.128"] as e return p, i'
        )
        assert ("/usr/bin/curl", "192.168.29.128") in set(result.rows)

    def test_operation_alternatives(self, store):
        result = execute_query(
            store, 'proc p["%/bin/bzip2%"] read or write file f as e return distinct f'
        )
        assert {"/tmp/upload.tar", "/tmp/upload.tar.bz2"} <= set(result.column("f.name"))

    def test_matched_event_ids_populated(self, store, attack_ground_truth):
        result = execute_query(
            store, 'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return p'
        )
        matched = result.matched_event_ids["e"]
        expected = {
            step.event_id
            for step in attack_ground_truth.steps
            if step.subject_exe == "/bin/tar" and step.object_identifier == "/etc/passwd"
        }
        assert expected <= matched


class TestMultiPatternExecution:
    def test_figure2_query_finds_exactly_the_attack(self, store, attack_ground_truth):
        result = execute_query(store, FIG2_QUERY)
        assert len(result) == 1
        assert result.rows[0] == (
            "/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
            "/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload", "/usr/bin/curl",
            "192.168.29.128",
        )
        assert result.all_matched_event_ids() == attack_ground_truth.event_ids

    def test_unoptimized_execution_same_result(self, store):
        optimized = execute_query(store, FIG2_QUERY, optimize=True)
        unoptimized = execute_query(store, FIG2_QUERY, optimize=False)
        assert set(optimized.rows) == set(unoptimized.rows)
        assert optimized.all_matched_event_ids() == unoptimized.all_matched_event_ids()

    def test_graph_backend_same_result(self, store):
        engine = TBQLExecutionEngine(store, backend="graph")
        result = engine.execute(FIG2_QUERY)
        assert len(result) == 1
        assert result.rows[0][0] == "/bin/tar"

    def test_temporal_constraint_filters_out_of_order_chains(self, store):
        # Reversing the order requirement (evt8 before evt1) makes the
        # ordering cyclic.  The static analyzer now proves that contradiction
        # up front (TR104) and the default enforcing gate rejects the query;
        # warn mode still executes it and must find nothing.
        reversed_query = FIG2_QUERY.replace(
            "with evt1 before evt2", "with evt8 before evt1, evt1 before evt2"
        )
        with pytest.raises(TBQLAnalysisError, match="TR104"):
            execute_query(store, reversed_query)
        engine = TBQLExecutionEngine(store, analysis_mode="warn")
        assert len(engine.execute(reversed_query)) == 0

    def test_entity_reuse_enforced(self, store):
        # f2 is written by tar and read by bzip2; requiring the same file id
        # links the two patterns — a query using two *different* file
        # variables with the same filter would also match, but entity reuse
        # must at least not lose the match.
        query = (
            'proc p1["%/bin/tar%"] write file f2["%/tmp/upload.tar%"] as e1 '
            'proc p2["%/bin/bzip2%"] read file f2 as e2 '
            "with e1 before e2 return p1, p2, f2"
        )
        result = execute_query(store, query)
        assert ("/bin/tar", "/bin/bzip2", "/tmp/upload.tar") in set(result.rows)

    def test_explicit_attribute_relation(self, store):
        query = (
            'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 '
            'proc p2 write file f2["%/tmp/upload.tar%"] as e2 '
            "with e1.srcid = e2.srcid return distinct p1, p2"
        )
        result = execute_query(store, query)
        assert set(result.rows) == {("/bin/tar", "/bin/tar")}

    def test_distinct_deduplicates(self, store):
        with_distinct = execute_query(store, 'proc p["%/bin/tar%"] read file f as e return distinct p')
        without_distinct = execute_query(store, 'proc p["%/bin/tar%"] read file f as e return p')
        assert len(with_distinct) <= len(without_distinct)
        assert len(with_distinct) == len(set(without_distinct.rows))

    def test_statistics_recorded(self, store):
        result = execute_query(store, FIG2_QUERY)
        stats = result.statistics
        assert stats["optimized"] is True
        assert len(stats["schedule"]) == 8
        assert set(stats["pattern_matches"]) <= set(stats["schedule"])
        assert stats["total_seconds"] > 0

    def test_early_termination_on_empty_pattern(self, store):
        query = (
            'proc p["%nonexistent%"] read file f["%nope%"] as e1 '
            'proc q["%/bin/tar%"] read file g as e2 '
            "return p, q"
        )
        result = execute_query(store, query)
        assert len(result) == 0


class TestPathPatternExecution:
    def test_variable_length_path_bridges_forked_process(self):
        """bash forks tar which writes the archive: proc bash ~>(1~3)[write] file."""
        builder = ScenarioBuilder(seed=5)
        bash = builder.spawn_process("/bin/bash")
        tar = builder.spawn_process("/bin/tar")
        archive = builder.file("/tmp/upload.tar")
        builder.fork(bash, tar)
        builder.write(tar, archive)
        store = AuditStore()
        store.load_trace(builder.build())
        result = execute_query(
            store,
            'proc p["%/bin/bash%"] ~>(1~3)[write] file f["%/tmp/upload.tar%"] as e return p, f',
        )
        assert len(result) == 1
        assert result.rows[0] == ("/bin/bash", "/tmp/upload.tar")
        assert len(result.matched_event_ids["e"]) == 2  # fork edge + write edge

    def test_direct_hop_excluded_when_min_length_two(self):
        builder = ScenarioBuilder(seed=5)
        tar = builder.spawn_process("/bin/tar")
        archive = builder.file("/tmp/upload.tar")
        builder.write(tar, archive)
        store = AuditStore()
        store.load_trace(builder.build())
        result = execute_query(
            store, 'proc p["%/bin/tar%"] ~>(2~3)[write] file f as e return p, f'
        )
        assert len(result) == 0

    def test_mixed_event_and_path_patterns(self):
        builder = ScenarioBuilder(seed=5)
        bash = builder.spawn_process("/bin/bash")
        tar = builder.spawn_process("/bin/tar")
        passwd = builder.file("/etc/passwd")
        archive = builder.file("/tmp/upload.tar")
        builder.fork(bash, tar)
        builder.read(tar, passwd)
        builder.write(tar, archive)
        store = AuditStore()
        store.load_trace(builder.build())
        query = (
            'proc p["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 '
            'proc b["%/bin/bash%"] ~>(1~2)[write] file f2["%upload%"] as e2 '
            "with e1 before e2 return p, b, f2"
        )
        result = execute_query(store, query)
        assert ("/bin/tar", "/bin/bash", "/tmp/upload.tar") in set(result.rows)


class TestErrors:
    def test_unknown_backend_rejected(self, store):
        with pytest.raises(ExecutionError):
            TBQLExecutionEngine(store, backend="quantum")

    def test_result_column_accessors(self, store):
        result = execute_query(store, 'proc p["%/bin/tar%"] read file f as e return distinct p, f')
        assert len(result.as_dicts()) == len(result)
        with pytest.raises(KeyError):
            result.column("nonexistent")

    def test_to_table_rendering(self, store):
        result = execute_query(store, 'proc p["%/bin/tar%"] read file f as e return distinct p, f')
        table = result.to_table(limit=2)
        assert "p.exename" in table
        empty = execute_query(store, 'proc p["%none%"] read file f as e return p')
        assert empty.to_table() == "(no results)"


class TestJoin:
    """Regression tests for shared-key derivation in the binding join."""

    @staticmethod
    def _binding(identifier_ids: dict, event_id: int) -> dict:
        binding = {name: {"id": entity_id} for name, entity_id in identifier_ids.items()}
        binding[f"@e{event_id}"] = {"id": event_id, "edge_ids": (event_id,)}
        return binding

    def test_join_keys_come_from_declared_identifiers(self):
        left = [self._binding({"p": 1, "f": 10}, 1), self._binding({"p": 2, "f": 20}, 2)]
        right = [self._binding({"p": 1, "g": 30}, 3), self._binding({"p": 3, "g": 40}, 4)]
        joined = TBQLExecutionEngine._join(left, right, shared=("p",))
        assert len(joined) == 1
        assert joined[0]["p"]["id"] == 1
        assert joined[0]["f"]["id"] == 10 and joined[0]["g"]["id"] == 30

    def test_binding_missing_shared_identifier_fails_loudly(self):
        """A binding without a declared join identifier must not silently
        drop the key and cross-join (the old behavior when the *first*
        binding happened to lack the identifier)."""
        left = [self._binding({"f": 10}, 1), self._binding({"p": 2, "f": 20}, 2)]
        right = [self._binding({"p": 1, "g": 30}, 3)]
        with pytest.raises(ExecutionError, match="missing shared entity identifier"):
            TBQLExecutionEngine._join(left, right, shared=("p",))

    def test_empty_shared_is_a_cross_join(self):
        left = [self._binding({"p": 1}, 1)]
        right = [self._binding({"q": 2}, 2), self._binding({"q": 3}, 3)]
        joined = TBQLExecutionEngine._join(left, right, shared=())
        assert len(joined) == 2

    def test_disconnected_then_connected_patterns_join_correctly(self, store):
        """End to end: a pattern connected to the *first* but not the most
        recently joined pattern must still join on its identifier."""
        result = execute_query(
            store,
            'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 '
            'proc p2["%/usr/bin/curl%"] connect ip i1["192.168.29.128"] as e2 '
            'proc p1 write file f2["%/tmp/upload.tar%"] as e3 '
            "return distinct p1, f1, f2, p2",
        )
        assert len(result) == 1
        assert result.rows[0] == ("/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/usr/bin/curl")
