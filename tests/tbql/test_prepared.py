"""Tests for prepared TBQL queries and the per-pattern plan cache."""

from __future__ import annotations

import pytest

from repro.auditing.workload.attacks import Figure2DataLeakageChain
from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import SoftwareUpdateWorkload
from repro.storage.loader import AuditStore
from repro.tbql.ast import TimeWindow
from repro.tbql.executor import TBQLExecutionEngine
from repro.tbql.parser import parse_query

TWO_PATTERN_QUERY = """
proc p["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
proc p write file f2["%/tmp/upload.tar%"] as e2
with e1 before e2
return distinct p, f1, f2
"""

SINGLE_PATTERN_QUERY = 'proc p["%/bin/tar%"] read file f as e1 return distinct p, f'


@pytest.fixture(scope="module")
def store() -> AuditStore:
    builder = ScenarioBuilder(seed=23)
    SoftwareUpdateWorkload(packages=3).generate(builder)
    Figure2DataLeakageChain().generate(builder)
    audit_store = AuditStore()
    audit_store.load_trace(builder.build())
    return audit_store


@pytest.fixture(scope="module")
def engine(store) -> TBQLExecutionEngine:
    return TBQLExecutionEngine(store)


class TestPreparedExecution:
    def test_prepared_matches_direct_execution(self, engine):
        prepared = engine.prepare(TWO_PATTERN_QUERY)
        direct = engine.execute(TWO_PATTERN_QUERY)
        via_prepared = prepared.execute()
        assert set(via_prepared.rows) == set(direct.rows)
        assert via_prepared.columns == direct.columns
        assert via_prepared.all_matched_event_ids() == direct.all_matched_event_ids()

    def test_prepared_accepts_source_text_and_ast(self, engine):
        from_text = engine.prepare(SINGLE_PATTERN_QUERY)
        from_ast = engine.prepare(parse_query(SINGLE_PATTERN_QUERY))
        assert set(from_text.execute().rows) == set(from_ast.execute().rows)

    def test_repeated_execution_is_stable(self, engine):
        prepared = engine.prepare(TWO_PATTERN_QUERY)
        first = prepared.execute()
        second = prepared.execute()
        third = prepared.execute()
        assert set(first.rows) == set(second.rows) == set(third.rows)

    def test_unoptimized_prepared_matches_optimized(self, engine):
        optimized = engine.prepare(TWO_PATTERN_QUERY, optimize=True).execute()
        unoptimized = engine.prepare(TWO_PATTERN_QUERY, optimize=False).execute()
        assert set(optimized.rows) == set(unoptimized.rows)

    def test_statistics_mark_prepared_runs(self, engine):
        prepared = engine.prepare(SINGLE_PATTERN_QUERY)
        result = prepared.execute()
        assert result.statistics["prepared"] is True
        assert "plan_cache" in result.statistics
        assert result.statistics["result_rows"] == len(result.rows)


class TestPlanCache:
    def test_templates_compiled_once_and_hit_afterwards(self, engine):
        prepared = engine.prepare(TWO_PATTERN_QUERY)
        prepared.execute()
        info_after_first = prepared.cache_info()
        assert info_after_first["misses"] >= 1
        assert info_after_first["templates"] >= 1
        prepared.execute()
        prepared.execute()
        info = prepared.cache_info()
        assert info["templates"] == info_after_first["templates"]
        assert info["hits"] > 0

    def test_window_override_adds_a_distinct_shape(self, engine):
        prepared = engine.prepare(SINGLE_PATTERN_QUERY)
        prepared.execute()
        shapes_without_window = prepared.cache_info()["shapes"]
        prepared.execute(window_overrides={"e1": TimeWindow(0, 2**62)})
        assert prepared.cache_info()["shapes"] > shapes_without_window
        # Same shape again: no new entries, one more hit.
        hits = prepared.cache_info()["hits"]
        prepared.execute(window_overrides={"e1": TimeWindow(0, 2**62)})
        assert prepared.cache_info()["hits"] > hits


class TestWindowOverrides:
    def test_override_narrows_results_like_a_windowed_query(self, engine, store):
        prepared = engine.prepare(SINGLE_PATTERN_QUERY)
        everything = prepared.execute()
        assert len(everything) >= 1
        # A window ending before the trace starts excludes every match.
        nothing = prepared.execute(window_overrides={"e1": TimeWindow(0, 1)})
        assert len(nothing) == 0
        # A window spanning the whole trace changes nothing.
        unbounded = prepared.execute(
            window_overrides={"e1": TimeWindow(0, 2**62)}
        )
        assert set(unbounded.rows) == set(everything.rows)

    def test_override_matches_explicitly_windowed_query(self, engine, store):
        events = store.loaded_trace.events
        cutoff = sorted(event.start_time for event in events)[len(events) // 2]
        prepared = engine.prepare(SINGLE_PATTERN_QUERY)
        overridden = prepared.execute(
            window_overrides={"e1": TimeWindow(cutoff, 2**62)}
        )
        windowed_text = SINGLE_PATTERN_QUERY.replace(
            "as e1", f"as e1 during ({cutoff}, {2**62})"
        )
        direct = engine.execute(windowed_text)
        assert set(overridden.rows) == set(direct.rows)

    def test_window_hints_do_not_change_results(self, engine):
        # e1 and e2 both carry two declared constraints; hinting e2 as
        # windowed raises its pruning score above e1's, so the schedule flips
        # from declaration order to sink-first.
        query = (
            'proc p["%/bin/tar%"] read file f1 as e1 '
            'proc p write file f2["%/tmp/upload.tar%"] as e2 '
            "with e1 before e2 return distinct p, f1, f2"
        )
        hinted = engine.prepare(query, window_hints=("e2",))
        plain = engine.prepare(query)
        assert set(hinted.execute().rows) == set(plain.execute().rows)
        assert plain.schedule[0].pattern.event_id == "e1"
        # The hinted sink is scheduled as if windowed: it runs first.
        assert hinted.schedule[0].pattern.event_id == "e2"
        # Execution patterns are the originals, not placeholder-windowed ones.
        assert all(
            step.pattern in hinted.query.patterns for step in hinted.schedule
        )


PATH_QUERY = 'proc p["%/bin/tar%"] ~>(1~3)[write] file f["%/tmp/upload.tar%"] as e return distinct p, f'


class TestGraphPlanCache:
    """Prepared executions on the graph backend share the plan cache too."""

    @pytest.fixture()
    def graph_engine(self, store) -> TBQLExecutionEngine:
        return TBQLExecutionEngine(store, backend="graph")

    def test_path_pattern_template_compiled_once(self, engine):
        prepared = engine.prepare(PATH_QUERY)
        direct = engine.execute(PATH_QUERY)
        first = prepared.execute()
        assert set(first.rows) == set(direct.rows)
        info_after_first = prepared.cache_info()
        assert info_after_first["templates"] == 1
        prepared.execute()
        prepared.execute()
        info = prepared.cache_info()
        assert info["templates"] == 1
        assert info["hits"] >= 2

    def test_graph_backend_event_patterns_use_the_cache(self, graph_engine):
        """Regression: ``backend="graph"`` used to bypass the prepared plan
        cache entirely, recompiling node/edge predicates every execution."""
        prepared = graph_engine.prepare(TWO_PATTERN_QUERY)
        direct = graph_engine.execute(TWO_PATTERN_QUERY)
        result = prepared.execute()
        assert set(result.rows) == set(direct.rows)
        assert prepared.cache_info()["templates"] >= 1
        hits_before = prepared.cache_info()["hits"]
        prepared.execute()
        assert prepared.cache_info()["hits"] > hits_before

    def test_window_override_reaches_the_graph_pattern(self, graph_engine, store):
        events = store.loaded_trace.events
        cutoff = sorted(event.start_time for event in events)[len(events) // 2]
        prepared = graph_engine.prepare(SINGLE_PATTERN_QUERY)
        everything = prepared.execute()
        windowed = prepared.execute(
            window_overrides={"e1": TimeWindow(cutoff, 2**62)}
        )
        windowed_text = SINGLE_PATTERN_QUERY.replace(
            "as e1", f"as e1 during ({cutoff}, {2**62})"
        )
        direct = graph_engine.execute(windowed_text)
        assert set(windowed.rows) == set(direct.rows)
        assert len(windowed.rows) <= len(everything.rows)

    def test_graph_template_is_not_mutated_by_constraints(self, graph_engine):
        prepared = graph_engine.prepare(SINGLE_PATTERN_QUERY)
        baseline = set(prepared.execute().rows)
        # A constrained shape must not leak its window into the cached template.
        prepared.execute(window_overrides={"e1": TimeWindow(0, 1)})
        assert set(prepared.execute().rows) == baseline
