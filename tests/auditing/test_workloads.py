"""Unit tests for the workload generators and the host simulator."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType
from repro.auditing.events import Operation
from repro.auditing.workload.attacks import (
    ATTACK_SCENARIOS,
    DataLeakageAttack,
    Figure2DataLeakageChain,
    PasswordCrackingAttack,
)
from repro.auditing.workload.base import ScenarioBuilder, VirtualClock
from repro.auditing.workload.benign import (
    AuthenticationWorkload,
    BackupWorkload,
    SoftwareUpdateWorkload,
    WebServerWorkload,
)
from repro.auditing.workload.generator import HostSimulator, simulate_demo_host


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(100) == 100
        assert clock.advance_ms(1) == 100 + 1_000_000

    def test_cannot_move_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestScenarioBuilder:
    def test_emit_advances_clock_monotonically(self):
        builder = ScenarioBuilder(seed=1)
        process = builder.spawn_process("/bin/x")
        target = builder.file("/tmp/a")
        first = builder.read(process, target)
        second = builder.read(process, target)
        assert second.start_time >= first.end_time

    def test_spawn_process_unique_pids(self):
        builder = ScenarioBuilder(seed=1)
        first = builder.spawn_process("/bin/x")
        second = builder.spawn_process("/bin/x")
        assert first.pid != second.pid

    def test_deterministic_for_same_seed(self):
        def build(seed):
            builder = ScenarioBuilder(seed=seed)
            WebServerWorkload(requests=5).generate(builder)
            trace = builder.build()
            return [(e.subject_id, e.object_id, e.operation.value, e.start_time) for e in trace.events]

        assert build(5) == build(5)
        assert build(5) != build(6)

    def test_build_registers_all_entities(self):
        builder = ScenarioBuilder(seed=1)
        process = builder.spawn_process("/bin/x")
        builder.read(process, builder.file("/tmp/a"))
        trace = builder.build()
        referenced = {e.subject_id for e in trace.events} | {e.object_id for e in trace.events}
        known = {entity.entity_id for entity in trace.entities}
        assert referenced <= known


class TestBenignWorkloads:
    def test_web_server_event_count(self):
        builder = ScenarioBuilder(seed=2)
        WebServerWorkload(requests=10).generate(builder)
        trace = builder.build()
        assert len(trace.events) == 40  # accept + read + send + log per request

    def test_software_update_uses_curl_and_tar(self):
        builder = ScenarioBuilder(seed=2)
        SoftwareUpdateWorkload(packages=2).generate(builder)
        trace = builder.build()
        exenames = {
            entity.attributes().get("exename")
            for entity in trace.entities_of_type(EntityType.PROCESS)
        }
        assert "/usr/bin/curl" in exenames
        assert "/bin/tar" in exenames

    def test_authentication_reads_passwd(self):
        builder = ScenarioBuilder(seed=2)
        AuthenticationWorkload(logins=3).generate(builder)
        trace = builder.build()
        names = {entity.attributes().get("name") for entity in trace.entities_of_type(EntityType.FILE)}
        assert "/etc/passwd" in names
        assert "/etc/shadow" in names

    def test_backup_resembles_attack_but_different_targets(self):
        builder = ScenarioBuilder(seed=2)
        BackupWorkload(files_per_run=3, runs=1).generate(builder)
        trace = builder.build()
        connections = trace.entities_of_type(EntityType.NETWORK)
        assert all(c.attributes()["dstip"] == "10.1.1.9" for c in connections)
        assert not trace.malicious_event_ids

    def test_benign_workloads_produce_no_malicious_labels(self):
        builder = ScenarioBuilder(seed=2)
        WebServerWorkload(requests=5).generate(builder)
        SoftwareUpdateWorkload(packages=1).generate(builder)
        trace = builder.build()
        assert trace.malicious_event_ids == set()


class TestAttackScenarios:
    def test_figure2_chain_has_eight_steps(self):
        builder = ScenarioBuilder(seed=3)
        attack = Figure2DataLeakageChain()
        attack.generate(builder)
        trace = builder.build()
        assert len(attack.ground_truth.steps) == 8
        assert len(trace.malicious_event_ids) == 8

    def test_figure2_chain_step_order(self):
        builder = ScenarioBuilder(seed=3)
        attack = Figure2DataLeakageChain()
        attack.generate(builder)
        operations = [step.operation for step in attack.ground_truth.steps]
        assert operations == [
            Operation.READ,
            Operation.WRITE,
            Operation.READ,
            Operation.WRITE,
            Operation.READ,
            Operation.WRITE,
            Operation.READ,
            Operation.CONNECT,
        ]

    def test_password_cracking_reads_shadow(self):
        builder = ScenarioBuilder(seed=3)
        attack = PasswordCrackingAttack()
        attack.generate(builder)
        identifiers = {step.object_identifier for step in attack.ground_truth.steps}
        assert "/etc/shadow" in identifiers
        assert attack.C2_IP in identifiers

    def test_data_leakage_ends_at_c2(self):
        builder = ScenarioBuilder(seed=3)
        attack = DataLeakageAttack(scanned_files=3)
        attack.generate(builder)
        last = attack.ground_truth.steps[-1]
        assert last.object_identifier == attack.C2_IP

    def test_attack_registry_contains_all(self):
        assert set(ATTACK_SCENARIOS) == {"figure2-data-leakage", "password-cracking", "data-leakage"}

    def test_ground_truth_event_ids_are_labelled_malicious(self):
        builder = ScenarioBuilder(seed=3)
        attack = DataLeakageAttack()
        attack.generate(builder)
        trace = builder.build()
        assert attack.ground_truth.event_ids <= trace.malicious_event_ids


class TestHostSimulator:
    def test_simulation_contains_benign_and_malicious(self):
        result = simulate_demo_host(seed=4, benign_scale=0.3)
        summary = result.trace.summary()
        assert summary["malicious_events"] > 0
        assert summary["events"] > summary["malicious_events"]

    def test_ground_truth_lookup(self):
        result = simulate_demo_host(seed=4, benign_scale=0.2)
        truth = result.ground_truth("password-cracking")
        assert truth.event_ids
        with pytest.raises(KeyError):
            result.ground_truth("nonexistent-attack")

    def test_attacks_interleaved_not_appended(self):
        result = simulate_demo_host(seed=4, benign_scale=0.3)
        trace = result.trace
        malicious_times = [e.start_time for e in trace.malicious_events()]
        benign_times = [e.start_time for e in trace.benign_events()]
        # Some benign activity happens after the attacks finished.
        assert max(benign_times) > max(malicious_times)

    def test_benign_scale_controls_size(self):
        small = HostSimulator(seed=5, benign_scale=0.2).add_default_benign().run()
        large = HostSimulator(seed=5, benign_scale=1.0).add_default_benign().run()
        assert len(large.trace.events) > len(small.trace.events)

    def test_same_seed_reproducible(self):
        first = simulate_demo_host(seed=9, benign_scale=0.2)
        second = simulate_demo_host(seed=9, benign_scale=0.2)
        assert [e.event_id for e in first.trace.events] == [e.event_id for e in second.trace.events]
        assert first.trace.summary() == second.trace.summary()
