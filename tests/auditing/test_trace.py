"""Unit tests for the audit trace container."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType, FileEntity, ProcessEntity
from repro.auditing.events import EventType, Operation, SystemEvent
from repro.auditing.trace import AuditTrace


def _make_event(event_id: int, subject: int, obj: int, start: int, operation=Operation.READ) -> SystemEvent:
    return SystemEvent(
        event_id=event_id,
        subject_id=subject,
        object_id=obj,
        operation=operation,
        object_type=EntityType.FILE,
        start_time=start,
        end_time=start + 10,
    )


@pytest.fixture
def small_trace() -> AuditTrace:
    process = ProcessEntity(entity_id=1, exename="/bin/cat", pid=10)
    target = FileEntity(entity_id=2, name="/etc/passwd")
    other = FileEntity(entity_id=3, name="/tmp/out")
    trace = AuditTrace(host="h1", entities=[process, target, other])
    trace.add_events([_make_event(1, 1, 2, 100), _make_event(2, 1, 3, 200, Operation.WRITE)])
    trace.add_events([_make_event(3, 1, 2, 300)], malicious=True)
    return trace


class TestAuditTrace:
    def test_entity_lookup(self, small_trace: AuditTrace):
        assert small_trace.entity(1).attribute("exename") == "/bin/cat"
        with pytest.raises(KeyError):
            small_trace.entity(999)

    def test_entities_of_type(self, small_trace: AuditTrace):
        files = small_trace.entities_of_type(EntityType.FILE)
        assert {entity.entity_id for entity in files} == {2, 3}

    def test_events_of_type(self, small_trace: AuditTrace):
        assert len(small_trace.events_of_type(EventType.FILE)) == 3
        assert small_trace.events_of_type(EventType.NETWORK) == []

    def test_malicious_and_benign_split(self, small_trace: AuditTrace):
        assert [event.event_id for event in small_trace.malicious_events()] == [3]
        assert {event.event_id for event in small_trace.benign_events()} == {1, 2}

    def test_time_span(self, small_trace: AuditTrace):
        assert small_trace.time_span() == (100, 310)

    def test_time_span_empty(self):
        assert AuditTrace().time_span() == (0, 0)

    def test_add_entities_deduplicates(self, small_trace: AuditTrace):
        before = len(small_trace.entities)
        small_trace.add_entities([FileEntity(entity_id=2, name="/etc/passwd")])
        assert len(small_trace.entities) == before

    def test_len_and_iter(self, small_trace: AuditTrace):
        assert len(small_trace) == 3
        assert [event.event_id for event in small_trace] == [1, 2, 3]

    def test_sorted_by_time(self, small_trace: AuditTrace):
        small_trace.add_events([_make_event(4, 1, 2, 50)])
        ordered = small_trace.sorted_by_time()
        assert [event.event_id for event in ordered.events] == [4, 1, 2, 3]
        # original trace preserves insertion order
        assert [event.event_id for event in small_trace.events] == [1, 2, 3, 4]

    def test_merge_combines_events_and_labels(self, small_trace: AuditTrace):
        other = AuditTrace(host="h1", entities=[FileEntity(entity_id=9, name="/x")])
        other.add_events([_make_event(10, 1, 9, 500)], malicious=True)
        merged = small_trace.merge(other)
        assert len(merged) == len(small_trace) + 1
        assert 10 in merged.malicious_event_ids
        assert 3 in merged.malicious_event_ids

    def test_summary_counts(self, small_trace: AuditTrace):
        summary = small_trace.summary()
        assert summary["entities"] == 3
        assert summary["events"] == 3
        assert summary["malicious_events"] == 1
        assert summary["file_events"] == 3
