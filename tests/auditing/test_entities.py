"""Unit tests for the system entity model."""

from __future__ import annotations

import pytest

from repro.auditing.entities import (
    DEFAULT_ATTRIBUTE,
    ENTITY_ATTRIBUTES,
    EntityFactory,
    EntityType,
    FileEntity,
    NetworkEntity,
    ProcessEntity,
    entity_from_row,
)


class TestEntityType:
    def test_from_string_accepts_tbql_keywords(self):
        assert EntityType.from_string("proc") is EntityType.PROCESS
        assert EntityType.from_string("file") is EntityType.FILE
        assert EntityType.from_string("ip") is EntityType.NETWORK

    def test_from_string_accepts_canonical_names(self):
        assert EntityType.from_string("process") is EntityType.PROCESS
        assert EntityType.from_string("network") is EntityType.NETWORK

    def test_from_string_is_case_insensitive(self):
        assert EntityType.from_string("  Proc ") is EntityType.PROCESS

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown entity type"):
            EntityType.from_string("socket")


class TestFileEntity:
    def test_attributes(self):
        entity = FileEntity(entity_id=1, name="/etc/passwd")
        assert entity.entity_type is EntityType.FILE
        assert entity.attributes() == {"name": "/etc/passwd"}

    def test_default_attribute_value(self):
        entity = FileEntity(entity_id=1, name="/etc/passwd")
        assert entity.default_attribute_value() == "/etc/passwd"

    def test_to_row_includes_type_and_id(self):
        row = FileEntity(entity_id=9, host="h1", name="/tmp/x").to_row()
        assert row["id"] == 9
        assert row["type"] == "file"
        assert row["host"] == "h1"
        assert row["name"] == "/tmp/x"


class TestProcessEntity:
    def test_attributes(self):
        entity = ProcessEntity(entity_id=2, exename="/bin/tar", pid=101, cmdline="tar -cf x")
        assert entity.entity_type is EntityType.PROCESS
        assert entity.attribute("exename") == "/bin/tar"
        assert entity.attribute("pid") == 101

    def test_default_attribute_is_exename(self):
        entity = ProcessEntity(entity_id=2, exename="/bin/tar", pid=101)
        assert entity.default_attribute_value() == "/bin/tar"

    def test_unknown_attribute_raises(self):
        entity = ProcessEntity(entity_id=2, exename="/bin/tar", pid=101)
        with pytest.raises(KeyError):
            entity.attribute("dstip")


class TestNetworkEntity:
    def test_attributes(self):
        entity = NetworkEntity(
            entity_id=3, srcip="10.0.0.5", srcport=40000, dstip="1.2.3.4", dstport=443
        )
        assert entity.entity_type is EntityType.NETWORK
        assert entity.attribute("dstip") == "1.2.3.4"
        assert entity.default_attribute_value() == "1.2.3.4"

    def test_default_protocol_is_tcp(self):
        entity = NetworkEntity(entity_id=3, dstip="1.2.3.4", dstport=443)
        assert entity.attribute("protocol") == "tcp"


class TestEntityFromRow:
    def test_roundtrip_file(self):
        original = FileEntity(entity_id=4, host="h", name="/var/log/syslog")
        assert entity_from_row(original.to_row()) == original

    def test_roundtrip_process(self):
        original = ProcessEntity(entity_id=5, exename="/bin/sh", pid=77, cmdline="sh -c x", owner="alice")
        assert entity_from_row(original.to_row()) == original

    def test_roundtrip_network(self):
        original = NetworkEntity(
            entity_id=6, srcip="10.0.0.1", srcport=1234, dstip="8.8.8.8", dstport=53, protocol="udp"
        )
        assert entity_from_row(original.to_row()) == original

    def test_missing_attributes_use_defaults(self):
        entity = entity_from_row({"id": 7, "type": "process"})
        assert isinstance(entity, ProcessEntity)
        assert entity.pid == 0
        assert entity.owner == "root"


class TestEntityFactory:
    def test_file_deduplication(self):
        factory = EntityFactory()
        first = factory.file("/etc/passwd")
        second = factory.file("/etc/passwd")
        assert first is second
        assert len(factory) == 1

    def test_distinct_files_get_distinct_ids(self):
        factory = EntityFactory()
        first = factory.file("/etc/passwd")
        second = factory.file("/etc/shadow")
        assert first.entity_id != second.entity_id

    def test_process_keyed_by_exename_and_pid(self):
        factory = EntityFactory()
        first = factory.process("/bin/bash", 100)
        same = factory.process("/bin/bash", 100)
        different = factory.process("/bin/bash", 101)
        assert first is same
        assert first is not different

    def test_network_keyed_by_five_tuple(self):
        factory = EntityFactory()
        first = factory.network("10.0.0.1", 1, "1.1.1.1", 443, "tcp")
        same = factory.network("10.0.0.1", 1, "1.1.1.1", 443, "tcp")
        different = factory.network("10.0.0.1", 1, "1.1.1.1", 443, "udp")
        assert first is same
        assert first is not different

    def test_all_entities_ordered_by_id(self):
        factory = EntityFactory()
        factory.file("/a")
        factory.process("/bin/x", 1)
        factory.network("1.1.1.1", 2, "2.2.2.2", 80)
        ids = [entity.entity_id for entity in factory.all_entities()]
        assert ids == sorted(ids)

    def test_ids_start_at_one_and_increment(self):
        factory = EntityFactory()
        assert factory.file("/a").entity_id == 1
        assert factory.file("/b").entity_id == 2

    def test_host_propagated_to_entities(self):
        factory = EntityFactory(host="web01")
        assert factory.file("/a").host == "web01"
        assert factory.process("/bin/x", 1).host == "web01"


class TestAttributeTables:
    def test_default_attribute_per_type(self):
        assert DEFAULT_ATTRIBUTE[EntityType.FILE] == "name"
        assert DEFAULT_ATTRIBUTE[EntityType.PROCESS] == "exename"
        assert DEFAULT_ATTRIBUTE[EntityType.NETWORK] == "dstip"

    def test_default_attribute_listed_in_entity_attributes(self):
        for entity_type, default in DEFAULT_ATTRIBUTE.items():
            assert default in ENTITY_ATTRIBUTES[entity_type]
