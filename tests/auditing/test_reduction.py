"""Unit tests for Causality Preserved Reduction."""

from __future__ import annotations

from repro.auditing.entities import EntityType, FileEntity, NetworkEntity, ProcessEntity
from repro.auditing.events import Operation, SystemEvent
from repro.auditing.reduction import CausalityPreservedReducer, reduce_trace
from repro.auditing.trace import AuditTrace
from repro.auditing.workload.base import ScenarioBuilder
from repro.auditing.workload.benign import NoisyFileServerWorkload


def _event(event_id, subject, obj, operation, start, end=None, amount=1, object_type=EntityType.FILE):
    return SystemEvent(
        event_id=event_id,
        subject_id=subject,
        object_id=obj,
        operation=operation,
        object_type=object_type,
        start_time=start,
        end_time=end if end is not None else start + 1,
        amount=amount,
    )


def _trace_with(events, malicious=()):
    entities = [
        ProcessEntity(entity_id=1, exename="/bin/p", pid=1),
        FileEntity(entity_id=2, name="/tmp/a"),
        FileEntity(entity_id=3, name="/tmp/b"),
        NetworkEntity(entity_id=4, dstip="1.1.1.1", dstport=80),
    ]
    trace = AuditTrace(entities=entities, events=list(events), malicious_event_ids=set(malicious))
    return trace


class TestCausalityPreservedReducer:
    def test_consecutive_same_edge_events_merge(self):
        events = [
            _event(1, 1, 2, Operation.READ, 100, amount=10),
            _event(2, 1, 2, Operation.READ, 200, amount=20),
            _event(3, 1, 2, Operation.READ, 300, amount=30),
        ]
        reduced, stats = reduce_trace(_trace_with(events))
        assert stats.events_before == 3
        assert stats.events_after == 1
        assert stats.reduction_factor == 3.0
        merged = reduced.events[0]
        assert merged.amount == 60
        assert merged.start_time == 100
        assert merged.end_time == 301

    def test_different_operations_not_merged(self):
        events = [
            _event(1, 1, 2, Operation.READ, 100),
            _event(2, 1, 2, Operation.WRITE, 200),
        ]
        _, stats = reduce_trace(_trace_with(events))
        assert stats.events_after == 2

    def test_interleaving_event_on_subject_blocks_merge(self):
        # The subject writes to another file between the two reads, so merging
        # the reads would hide a possible information-flow ordering.
        events = [
            _event(1, 1, 2, Operation.READ, 100),
            _event(2, 1, 3, Operation.WRITE, 200),
            _event(3, 1, 2, Operation.READ, 300),
        ]
        _, stats = reduce_trace(_trace_with(events))
        assert stats.events_after == 3

    def test_interleaving_event_on_object_blocks_merge(self):
        # Another process (id 5 is not registered; reuse subject 1 with the
        # object touched by a different edge) — here the object is written by a
        # different operation in between.
        events = [
            _event(1, 1, 2, Operation.READ, 100),
            _event(2, 1, 2, Operation.WRITE, 200),
            _event(3, 1, 2, Operation.READ, 300),
        ]
        _, stats = reduce_trace(_trace_with(events))
        assert stats.events_after == 3

    def test_merge_window_limits_merging(self):
        events = [
            _event(1, 1, 2, Operation.READ, 0),
            _event(2, 1, 2, Operation.READ, 50_000_000_000),  # 50 s later
        ]
        _, stats_small_window = CausalityPreservedReducer(merge_window_ns=1_000_000_000).reduce(
            _trace_with(events)
        )
        _, stats_unbounded = CausalityPreservedReducer(merge_window_ns=None).reduce(
            _trace_with(events)
        )
        assert stats_small_window.events_after == 2
        assert stats_unbounded.events_after == 1

    def test_malicious_label_survives_merge(self):
        events = [
            _event(1, 1, 2, Operation.READ, 100),
            _event(2, 1, 2, Operation.READ, 200),
        ]
        reduced, _ = reduce_trace(_trace_with(events, malicious={2}))
        assert len(reduced.events) == 1
        assert reduced.malicious_event_ids == {reduced.events[0].event_id}

    def test_entities_preserved(self):
        events = [_event(1, 1, 2, Operation.READ, 100)]
        trace = _trace_with(events)
        reduced, _ = reduce_trace(trace)
        assert len(reduced.entities) == len(trace.entities)

    def test_empty_trace(self):
        reduced, stats = reduce_trace(AuditTrace())
        assert stats.events_before == 0
        assert stats.events_after == 0
        assert stats.reduction_factor == 1.0
        assert len(reduced.events) == 0

    def test_noisy_file_server_workload_reduces_substantially(self):
        builder = ScenarioBuilder(seed=3)
        NoisyFileServerWorkload(sessions=4, operations_per_session=50).generate(builder)
        trace = builder.build()
        reduced, stats = reduce_trace(trace)
        assert stats.reduction_factor > 5.0
        assert len(reduced.events) < len(trace.events)

    def test_reduction_preserves_edge_set(self):
        builder = ScenarioBuilder(seed=3)
        NoisyFileServerWorkload(sessions=2, operations_per_session=20).generate(builder)
        trace = builder.build()
        reduced, _ = reduce_trace(trace)

        def edges(t):
            return {(e.subject_id, e.object_id, e.operation) for e in t.events}

        assert edges(reduced) == edges(trace)

    def test_reduction_preserves_total_amount(self):
        builder = ScenarioBuilder(seed=3)
        NoisyFileServerWorkload(sessions=2, operations_per_session=20).generate(builder)
        trace = builder.build()
        reduced, _ = reduce_trace(trace)
        assert sum(e.amount for e in reduced.events) == sum(e.amount for e in trace.events)


class TestIncrementalReducer:
    """The streaming-mode reducer must match whole-trace reduction exactly."""

    @staticmethod
    def _noisy_trace():
        builder = ScenarioBuilder(seed=3)
        NoisyFileServerWorkload(sessions=3, operations_per_session=30).generate(builder)
        return builder.build()

    def _stream(self, reducer, trace, batch_size):
        incremental = reducer.incremental()
        ordered = sorted(trace.events, key=lambda e: (e.start_time, e.event_id))
        emitted = []
        for start in range(0, len(ordered), batch_size):
            emitted.extend(
                incremental.ingest(ordered[start : start + batch_size], trace.malicious_event_ids)
            )
        emitted.extend(incremental.flush())
        return incremental, emitted

    def test_matches_batch_reduction_for_any_batch_size(self):
        trace = self._noisy_trace()
        for window in (10_000_000_000, 2_000_000, None):
            reducer = CausalityPreservedReducer(merge_window_ns=window)
            reduced, _ = reducer.reduce(trace)
            expected = {
                (e.event_id, e.start_time, e.end_time, e.amount) for e in reduced.events
            }
            for batch_size in (1, 13, 10_000):
                _, emitted = self._stream(reducer, trace, batch_size)
                streamed = {
                    (r.event.event_id, r.event.start_time, r.event.end_time, r.event.amount)
                    for r in emitted
                }
                assert streamed == expected, (window, batch_size)

    def test_malicious_labels_match_batch_reduction(self):
        builder = ScenarioBuilder(seed=5)
        NoisyFileServerWorkload(sessions=2, operations_per_session=25).generate(builder)
        trace = builder.build()
        # Label a run of events malicious so some merge into representatives.
        for event in trace.events[10:30]:
            trace.malicious_event_ids.add(event.event_id)
        reducer = CausalityPreservedReducer()
        reduced, _ = reducer.reduce(trace)
        _, emitted = self._stream(reducer, trace, batch_size=7)
        assert {r.event.event_id for r in emitted if r.malicious} == reduced.malicious_event_ids

    def test_counters_and_pending(self):
        trace = self._noisy_trace()
        reducer = CausalityPreservedReducer()
        incremental = reducer.incremental()
        incremental.ingest(trace.events, trace.malicious_event_ids)
        assert incremental.events_seen == len(trace.events)
        assert incremental.pending_count > 0
        stats = incremental.statistics()
        assert stats.events_before == len(trace.events)
        incremental.flush()
        assert incremental.pending_count == 0
        assert incremental.events_emitted == stats.events_after
