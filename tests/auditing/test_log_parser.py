"""Unit tests for audit log parsing (records → entities/events)."""

from __future__ import annotations

import io

import pytest

from repro.auditing.parser import AuditLogParser, parse_log_text
from repro.auditing.sysdig import write_trace
from repro.auditing.workload.attacks import Figure2DataLeakageChain
from repro.auditing.workload.base import ScenarioBuilder
from repro.errors import AuditLogError


def _figure2_trace():
    builder = ScenarioBuilder(seed=1)
    attack = Figure2DataLeakageChain()
    attack.generate(builder)
    return builder.build()


class TestAuditLogParser:
    def test_roundtrip_preserves_event_count(self):
        trace = _figure2_trace()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        parsed, stats = AuditLogParser(host=trace.host).parse(io.StringIO(buffer.getvalue()))
        assert stats.records_parsed == len(trace.events)
        assert stats.records_skipped == 0
        assert len(parsed.events) == len(trace.events)

    def test_roundtrip_preserves_event_semantics(self):
        trace = _figure2_trace()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        parsed, _ = AuditLogParser(host=trace.host).parse(io.StringIO(buffer.getvalue()))

        def edge_set(t):
            by_id = {entity.entity_id: entity for entity in t.entities}
            return {
                (
                    by_id[event.subject_id].default_attribute_value(),
                    event.operation.value,
                    by_id[event.object_id].default_attribute_value(),
                )
                for event in t.events
            }

        assert edge_set(parsed) == edge_set(trace)

    def test_entities_deduplicated_across_records(self):
        trace = _figure2_trace()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        parsed, _ = AuditLogParser().parse(io.StringIO(buffer.getvalue()))
        passwd_entities = [
            entity for entity in parsed.entities
            if entity.attributes().get("name") == "/etc/passwd"
        ]
        assert len(passwd_entities) == 1

    def test_lenient_mode_skips_corrupt_records(self):
        trace = _figure2_trace()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        corrupted = buffer.getvalue() + "this is not a record\n"
        parsed, stats = AuditLogParser().parse(io.StringIO(corrupted))
        assert stats.records_skipped == 1
        assert stats.records_parsed == len(trace.events)
        assert 0 < stats.skip_ratio < 1

    def test_strict_mode_raises_on_corrupt_record(self):
        with pytest.raises(AuditLogError):
            AuditLogParser(strict=True).parse(io.StringIO("garbage\n"))

    def test_record_without_object_fields_is_skipped(self):
        line = "evt.num=1\tevt.time=1\tevt.endtime=2\tevt.type=read\tproc.name=/bin/x\tproc.pid=1\tevt.buflen=0\thost=h"
        parsed, stats = AuditLogParser().parse(io.StringIO(line + "\n"))
        assert stats.records_skipped == 1
        assert len(parsed.events) == 0

    def test_parse_log_text_helper(self):
        trace = _figure2_trace()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        parsed = parse_log_text(buffer.getvalue(), host="victim-host")
        assert len(parsed.events) == len(trace.events)
        assert parsed.host == "victim-host"

    def test_skip_ratio_zero_for_empty_input(self):
        _, stats = AuditLogParser().parse(io.StringIO(""))
        assert stats.skip_ratio == 0.0
