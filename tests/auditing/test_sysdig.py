"""Unit tests for the Sysdig-style log format (emit + parse)."""

from __future__ import annotations

import io

import pytest

from repro.auditing.entities import EntityType, FileEntity, NetworkEntity, ProcessEntity
from repro.auditing.events import Operation, SystemEvent
from repro.auditing.sysdig import (
    format_record,
    iter_records,
    iter_records_lenient,
    parse_record,
    write_trace,
)
from repro.auditing.trace import AuditTrace
from repro.errors import AuditLogError


@pytest.fixture
def sample_entities():
    process = ProcessEntity(entity_id=1, exename="/bin/tar", pid=42, cmdline="tar -cf x", owner="root")
    file_entity = FileEntity(entity_id=2, name="/etc/passwd")
    connection = NetworkEntity(entity_id=3, srcip="10.0.0.5", srcport=4000, dstip="1.2.3.4", dstport=443)
    return process, file_entity, connection


def _file_event(event_id=1) -> SystemEvent:
    return SystemEvent(
        event_id=event_id,
        subject_id=1,
        object_id=2,
        operation=Operation.READ,
        object_type=EntityType.FILE,
        start_time=1000,
        end_time=2000,
        amount=4096,
    )


class TestFormatRecord:
    def test_file_event_fields(self, sample_entities):
        process, file_entity, _ = sample_entities
        line = format_record(_file_event(), process, file_entity)
        record = parse_record(line)
        assert record["evt.num"] == "1"
        assert record["evt.type"] == "read"
        assert record["proc.name"] == "/bin/tar"
        assert record["fd.name"] == "/etc/passwd"
        assert record["evt.buflen"] == "4096"

    def test_network_event_fields(self, sample_entities):
        process, _, connection = sample_entities
        event = SystemEvent(
            event_id=2,
            subject_id=1,
            object_id=3,
            operation=Operation.CONNECT,
            object_type=EntityType.NETWORK,
            start_time=10,
            end_time=20,
        )
        record = parse_record(format_record(event, process, connection))
        assert record["fd.cip"] == "1.2.3.4"
        assert record["fd.cport"] == "443"
        assert record["fd.l4proto"] == "tcp"

    def test_process_event_fields(self, sample_entities):
        process, _, _ = sample_entities
        child = ProcessEntity(entity_id=4, exename="/bin/sh", pid=43, cmdline="sh")
        event = SystemEvent(
            event_id=3,
            subject_id=1,
            object_id=4,
            operation=Operation.FORK,
            object_type=EntityType.PROCESS,
            start_time=10,
            end_time=20,
        )
        record = parse_record(format_record(event, process, child))
        assert record["child.name"] == "/bin/sh"
        assert record["child.pid"] == "43"

    def test_non_process_subject_rejected(self, sample_entities):
        _, file_entity, _ = sample_entities
        with pytest.raises(AuditLogError):
            format_record(_file_event(), file_entity, file_entity)

    def test_escaping_of_tabs_and_newlines(self, sample_entities):
        process, _, _ = sample_entities
        weird = FileEntity(entity_id=5, name="/tmp/evil\tname\nwith newline")
        event = SystemEvent(
            event_id=4,
            subject_id=1,
            object_id=5,
            operation=Operation.WRITE,
            object_type=EntityType.FILE,
            start_time=1,
            end_time=2,
        )
        line = format_record(event, process, weird)
        assert "\n" not in line
        record = parse_record(line)
        assert record["fd.name"] == "/tmp/evil\tname\nwith newline"


class TestParseRecord:
    def test_empty_record_rejected(self):
        with pytest.raises(AuditLogError, match="empty"):
            parse_record("   \n")

    def test_malformed_field_rejected(self):
        with pytest.raises(AuditLogError, match="malformed"):
            parse_record("evt.num=1\tgarbage-without-equals")

    def test_iter_records_skips_blank_lines(self, sample_entities):
        process, file_entity, _ = sample_entities
        line = format_record(_file_event(), process, file_entity)
        records = list(iter_records(io.StringIO(f"\n{line}\n\n{line}\n")))
        assert len(records) == 2

    def test_iter_records_lenient_reports_errors(self, sample_entities):
        process, file_entity, _ = sample_entities
        good = format_record(_file_event(), process, file_entity)
        stream = io.StringIO(f"{good}\nbroken line\n")
        results = list(iter_records_lenient(stream))
        assert results[0][1] is None
        assert results[1][0] is None and "malformed" in results[1][1]


class TestWriteTrace:
    def test_writes_one_line_per_event(self, sample_entities):
        process, file_entity, _ = sample_entities
        trace = AuditTrace(entities=[process, file_entity])
        trace.add_events([_file_event(1), _file_event(2)])
        buffer = io.StringIO()
        count = write_trace(trace, buffer)
        assert count == 2
        assert len(buffer.getvalue().splitlines()) == 2
