"""Unit tests for the system event model."""

from __future__ import annotations

import pytest

from repro.auditing.entities import EntityType, FileEntity, NetworkEntity, ProcessEntity
from repro.auditing.events import (
    OPERATIONS_BY_EVENT_TYPE,
    EventFactory,
    EventType,
    Operation,
    SystemEvent,
    event_from_row,
    event_type_for_object,
)


class TestOperation:
    def test_from_string_canonical(self):
        assert Operation.from_string("read") is Operation.READ
        assert Operation.from_string("connect") is Operation.CONNECT

    def test_from_string_syscall_aliases(self):
        assert Operation.from_string("execve") is Operation.EXEC
        assert Operation.from_string("clone") is Operation.FORK
        assert Operation.from_string("sendto") is Operation.SEND
        assert Operation.from_string("openat") is Operation.READ

    def test_from_string_case_insensitive(self):
        assert Operation.from_string("  WRITE ") is Operation.WRITE

    def test_from_string_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown operation"):
            Operation.from_string("teleport")


class TestEventTypeMapping:
    def test_object_type_determines_event_type(self):
        assert event_type_for_object(EntityType.FILE) is EventType.FILE
        assert event_type_for_object(EntityType.PROCESS) is EventType.PROCESS
        assert event_type_for_object(EntityType.NETWORK) is EventType.NETWORK

    def test_operations_partitioned_by_event_type(self):
        file_operations = OPERATIONS_BY_EVENT_TYPE[EventType.FILE]
        network_operations = OPERATIONS_BY_EVENT_TYPE[EventType.NETWORK]
        assert Operation.READ in file_operations
        assert Operation.CONNECT in network_operations
        assert Operation.CONNECT not in file_operations


class TestSystemEvent:
    def _event(self, start=100, end=200, **kwargs) -> SystemEvent:
        defaults = dict(
            event_id=1,
            subject_id=10,
            object_id=20,
            operation=Operation.READ,
            object_type=EntityType.FILE,
            start_time=start,
            end_time=end,
        )
        defaults.update(kwargs)
        return SystemEvent(**defaults)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            self._event(start=200, end=100)

    def test_event_type_property(self):
        assert self._event().event_type is EventType.FILE
        assert self._event(object_type=EntityType.NETWORK, operation=Operation.CONNECT).event_type is EventType.NETWORK

    def test_occurs_before(self):
        first = self._event(start=100, end=200)
        second = self._event(start=200, end=300)
        third = self._event(start=150, end=250)
        assert first.occurs_before(second)
        assert not first.occurs_before(third)

    def test_to_row_roundtrip(self):
        event = self._event(amount=42)
        row = event.to_row()
        row["objecttype"] = event.object_type.value
        assert event_from_row(row) == event

    def test_merged_with_sums_amount_and_extends_window(self):
        first = self._event(start=100, end=200, amount=10)
        second = self._event(event_id=2, start=300, end=400, amount=5)
        merged = first.merged_with(second)
        assert merged.start_time == 100
        assert merged.end_time == 400
        assert merged.amount == 15
        assert merged.event_id == first.event_id

    def test_merged_with_different_edge_rejected(self):
        first = self._event()
        other = self._event(event_id=2, object_id=99)
        with pytest.raises(ValueError, match="same edge"):
            first.merged_with(other)


class TestEventFactory:
    def setup_method(self):
        self.factory = EventFactory()
        self.process = ProcessEntity(entity_id=1, exename="/bin/cat", pid=5)
        self.file = FileEntity(entity_id=2, name="/etc/passwd")
        self.connection = NetworkEntity(entity_id=3, dstip="1.2.3.4", dstport=80)

    def test_create_file_event(self):
        event = self.factory.create(self.process, Operation.READ, self.file, start_time=10)
        assert event.subject_id == 1
        assert event.object_id == 2
        assert event.event_type is EventType.FILE

    def test_subject_must_be_process(self):
        with pytest.raises(ValueError, match="subject must be a process"):
            self.factory.create(self.file, Operation.READ, self.file, start_time=10)

    def test_operation_must_match_object_type(self):
        with pytest.raises(ValueError, match="not valid"):
            self.factory.create(self.process, Operation.CONNECT, self.file, start_time=10)

    def test_event_ids_increment(self):
        first = self.factory.create(self.process, Operation.READ, self.file, start_time=10)
        second = self.factory.create(self.process, Operation.WRITE, self.file, start_time=20)
        assert second.event_id == first.event_id + 1

    def test_end_time_defaults_to_start(self):
        event = self.factory.create(self.process, Operation.READ, self.file, start_time=10)
        assert event.end_time == 10

    def test_network_event(self):
        event = self.factory.create(self.process, Operation.CONNECT, self.connection, start_time=5)
        assert event.event_type is EventType.NETWORK
