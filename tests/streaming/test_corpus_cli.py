"""Tests for the ``threatraptor corpus`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data.osctireports import corpus_variants


@pytest.fixture()
def audit_log(tmp_path):
    path = tmp_path / "audit.log"
    exit_code = main(["simulate", str(path), "--seed", "3", "--scale", "0.3"])
    assert exit_code == 0
    return path


@pytest.fixture()
def report_directory(tmp_path):
    directory = tmp_path / "reports"
    directory.mkdir()
    for variant in corpus_variants(8, seed=2):
        (directory / f"{variant.name}.txt").write_text(variant.text, encoding="utf-8")
    return directory


class TestCorpusCommand:
    def test_corpus_dedups_and_alerts_with_provenance(
        self, report_directory, audit_log, capsys
    ):
        assert main(["corpus", str(report_directory), str(audit_log)]) == 0
        output = capsys.readouterr().out
        # 8 overlapping reports registered fewer standing hunts.
        assert "8 reports -> 5 standing hunts" in output
        assert "dedup ratio" in output
        assert "ALERT [corpus-" in output
        assert "reports=" in output

    def test_corpus_parallel_workers(self, report_directory, audit_log, capsys):
        assert main(
            ["corpus", str(report_directory), str(audit_log), "--workers", "2"]
        ) == 0
        assert "standing hunts" in capsys.readouterr().out

    def test_corpus_bundled_literal(self, audit_log, capsys):
        assert main(["corpus", "bundled", str(audit_log)]) == 0
        output = capsys.readouterr().out
        # The unauditable bundled report is skipped, not fatal.
        assert "skipped phishing-infrastructure" in output

    def test_corpus_jsonl_and_alert_file(self, tmp_path, audit_log, capsys):
        feed = tmp_path / "feed.jsonl"
        records = [
            {"id": variant.name, "text": variant.text}
            for variant in corpus_variants(4, seed=5)
        ]
        feed.write_text(
            "\n".join(json.dumps(record) for record in records), encoding="utf-8"
        )
        alerts_path = tmp_path / "alerts.jsonl"
        assert main(
            ["corpus", str(feed), str(audit_log), "--alerts", str(alerts_path)]
        ) == 0
        lines = [
            json.loads(line)
            for line in alerts_path.read_text(encoding="utf-8").splitlines()
            if line
        ]
        assert lines
        assert all("reports" in line for line in lines)
        assert all(line["reports"] for line in lines)

    def test_corpus_missing_directory_is_error(self, audit_log, capsys):
        assert main(["corpus", "/nonexistent/reports", str(audit_log)]) == 1
        assert "error:" in capsys.readouterr().err
