"""End-to-end tests for the continuous hunting service."""

from __future__ import annotations

import io
import json

import pytest

from repro.auditing.workload.attacks import Figure2DataLeakageChain
from repro.auditing.workload.generator import HostSimulator
from repro.core.pipeline import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.streaming import JSONLSink, ListSink, ReplaySource


@pytest.fixture(scope="module")
def simulation():
    return (
        HostSimulator(seed=31, benign_scale=0.4)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
        .run()
    )


@pytest.fixture(scope="module")
def batch_matched(simulation):
    """What a one-shot batch hunt over the full trace finds."""
    raptor = ThreatRaptor()
    raptor.load_trace(simulation.trace)
    return raptor.hunt(FIGURE2_REPORT.text).result.all_matched_event_ids()


def _run_streaming(simulation, batch_size):
    raptor = ThreatRaptor()
    sink = ListSink()
    service = raptor.watch(
        FIGURE2_REPORT.text, name="figure2", batch_size=batch_size, sinks=(sink,)
    )
    alerts = service.run(ReplaySource(simulation))
    return service, sink, alerts


class TestStreamingHuntEquivalence:
    def test_streamed_hunt_matches_batch_hunt(self, simulation, batch_matched):
        batch_size = max(1, len(simulation.trace.events) // 12)
        service, _, _ = _run_streaming(simulation, batch_size)
        assert service.statistics()["ingest"]["batches"] >= 10
        assert service.matched_event_ids("figure2") == batch_matched

    def test_alerts_deduplicated_across_batches(self, simulation, batch_matched):
        service, sink, alerts = _run_streaming(
            simulation, max(1, len(simulation.trace.events) // 15)
        )
        signatures = [alert.matched_event_ids for alert in alerts]
        assert len(signatures) == len(set(signatures))
        assert sink.alerts == alerts
        matched = set().union(*(set(s) for s in signatures))
        assert matched == batch_matched

    @pytest.mark.parametrize("batch_size", [17, 1000])
    def test_equivalence_is_batch_size_independent(
        self, simulation, batch_matched, batch_size
    ):
        service, _, _ = _run_streaming(simulation, batch_size)
        assert service.matched_event_ids("figure2") == batch_matched


class TestHuntingService:
    def test_register_requires_exactly_one_source(self):
        service = ThreatRaptor().watch()
        with pytest.raises(ValueError):
            service.register_hunt("bad")
        with pytest.raises(ValueError):
            service.register_hunt("bad", report="text", query="proc p read file f as e return p")

    def test_register_tbql_query_directly(self, simulation):
        service = ThreatRaptor().watch(batch_size=64)
        service.register_hunt(
            "tar", query='proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return p, f'
        )
        service.run(ReplaySource(simulation))
        assert service.matched_event_ids("tar")

    def test_hunt_registered_after_data_still_catches_up(self, simulation, batch_matched):
        """The first evaluation is unwindowed, so earlier batches are searched."""
        service = ThreatRaptor().watch(batch_size=64)
        records = list(ReplaySource(simulation).records())
        midpoint = len(records) // 2
        for start in range(0, midpoint, 64):
            service.process_batch(records[start : min(start + 64, midpoint)])
        service.register_hunt("late", report=FIGURE2_REPORT.text)
        for start in range(midpoint, len(records), 64):
            service.process_batch(records[start : start + 64])
        service.flush()
        assert service.matched_event_ids("late") == batch_matched

    def test_statistics_shape(self, simulation):
        service, _, _ = _run_streaming(simulation, 64)
        stats = service.statistics()
        assert stats["ingest"]["events_ingested"] == len(simulation.trace.events)
        assert stats["ingest"]["events_per_second"] > 0
        assert stats["ingest"]["pending_events"] == 0  # flushed at end of run
        hunt = stats["hunts"]["figure2"]
        assert hunt["evaluations"] > 0
        assert hunt["alerts"] >= 1
        assert hunt["matched_events"] == len(service.matched_event_ids("figure2"))

    def test_jsonl_sink_round_trips(self, simulation):
        raptor = ThreatRaptor()
        buffer = io.StringIO()
        service = raptor.watch(
            FIGURE2_REPORT.text, name="figure2", batch_size=64, sinks=(JSONLSink(buffer),)
        )
        alerts = service.run(ReplaySource(simulation))
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert len(lines) == len(alerts)
        for parsed, alert in zip(lines, alerts):
            assert parsed == alert.to_dict()

    def test_shares_store_with_raptor(self, simulation):
        """Data loaded before watching stays huntable and vice versa."""
        raptor = ThreatRaptor()
        service = raptor.watch(batch_size=64)
        service.run(ReplaySource(simulation))
        report = raptor.hunt(FIGURE2_REPORT.text)
        assert report.result.all_matched_event_ids()
