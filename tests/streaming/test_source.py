"""Tests for streaming event sources."""

from __future__ import annotations

import io

import pytest

from repro.auditing.sysdig import write_trace
from repro.auditing.workload.attacks import Figure2DataLeakageChain
from repro.auditing.workload.generator import HostSimulator
from repro.errors import ConfigurationError
from repro.streaming.source import LogTailSource, ReplaySource, iter_batches


@pytest.fixture(scope="module")
def simulation():
    return (
        HostSimulator(seed=13, benign_scale=0.3)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
        .run()
    )


class TestReplaySource:
    def test_replays_every_event_in_time_order(self, simulation):
        records = list(ReplaySource(simulation).records())
        assert len(records) == len(simulation.trace.events)
        starts = [record.event.start_time for record in records]
        assert starts == sorted(starts)

    def test_carries_malicious_labels(self, simulation):
        records = list(ReplaySource(simulation).records())
        labelled = {record.event.event_id for record in records if record.malicious}
        assert labelled == simulation.trace.malicious_event_ids

    def test_record_entities_match_event_endpoints(self, simulation):
        record = next(iter(ReplaySource(simulation.trace)))
        assert record.subject.entity_id == record.event.subject_id
        assert record.obj.entity_id == record.event.object_id

    def test_max_events_bounds_replay(self, simulation):
        records = list(ReplaySource(simulation, max_events=5).records())
        assert len(records) == 5

    def test_rejects_nonpositive_rate(self, simulation):
        with pytest.raises(ConfigurationError):
            ReplaySource(simulation, rate_events_per_second=0)


class TestLogTailSource:
    def test_parses_written_trace(self, simulation, tmp_path):
        path = tmp_path / "audit.log"
        with open(path, "w", encoding="utf-8") as handle:
            written = write_trace(simulation.trace, handle)
        records = list(LogTailSource(path=str(path)).records())
        assert len(records) == written
        assert {r.event.event_id for r in records} == {
            e.event_id for e in simulation.trace.events
        }

    def test_entities_deduplicated_across_lines(self, simulation, tmp_path):
        path = tmp_path / "audit.log"
        with open(path, "w", encoding="utf-8") as handle:
            write_trace(simulation.trace, handle)
        source = LogTailSource(path=str(path))
        seen: dict[int, object] = {}
        for record in source.records():
            for entity in record.entities():
                if entity.entity_id in seen:
                    assert seen[entity.entity_id] is entity
                seen[entity.entity_id] = entity

    def test_skips_corrupt_lines_leniently(self, simulation):
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        lines = buffer.getvalue().splitlines(keepends=True)
        lines.insert(1, "this is not an audit record\n")
        source = LogTailSource(stream=io.StringIO("".join(lines)))
        records = list(source.records())
        assert len(records) == len(simulation.trace.events)
        assert source.statistics.records_skipped == 1

    def test_max_events(self, simulation):
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        buffer.seek(0)
        records = list(LogTailSource(stream=buffer, max_events=3).records())
        assert len(records) == 3

    def test_requires_path_or_stream(self):
        with pytest.raises(ConfigurationError):
            LogTailSource()

    def test_final_line_without_newline_still_parses(self, simulation):
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        text = buffer.getvalue().rstrip("\n")
        records = list(LogTailSource(stream=io.StringIO(text)).records())
        assert len(records) == len(simulation.trace.events)

    def test_follow_mode_buffers_partial_lines(self, simulation):
        """A record caught mid-write must not be parsed until its newline."""
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        first_line = buffer.getvalue().splitlines()[0] + "\n"
        split_at = len(first_line) // 2

        class ChunkedHandle:
            """readline() returns a partial line, then the rest (tail -f EOF)."""

            def __init__(self, chunks):
                self._chunks = list(chunks)

            def readline(self):
                return self._chunks.pop(0) if self._chunks else ""

        handle = ChunkedHandle([first_line[:split_at], "", first_line[split_at:]])
        source = LogTailSource(
            stream=handle, follow=True, poll_interval=0.0, max_events=1  # type: ignore[arg-type]
        )
        records = list(source.records())
        assert len(records) == 1
        assert source.statistics.records_skipped == 0
        assert records[0].event.event_id == simulation.trace.events[0].event_id


class TestIterBatches:
    def test_groups_with_remainder(self):
        batches = list(iter_batches(iter(range(10)), 4))
        assert [len(batch) for batch in batches] == [4, 4, 2]

    def test_rejects_zero_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches(iter(range(3)), 0))
