"""Tests for streaming event sources."""

from __future__ import annotations

import io

import pytest

from repro.auditing.sysdig import write_trace
from repro.auditing.workload.attacks import Figure2DataLeakageChain
from repro.auditing.workload.generator import HostSimulator
from repro.errors import ConfigurationError
from repro.streaming.source import LogTailSource, ReplaySource, iter_batches


@pytest.fixture(scope="module")
def simulation():
    return (
        HostSimulator(seed=13, benign_scale=0.3)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
        .run()
    )


class TestReplaySource:
    def test_replays_every_event_in_time_order(self, simulation):
        records = list(ReplaySource(simulation).records())
        assert len(records) == len(simulation.trace.events)
        starts = [record.event.start_time for record in records]
        assert starts == sorted(starts)

    def test_carries_malicious_labels(self, simulation):
        records = list(ReplaySource(simulation).records())
        labelled = {record.event.event_id for record in records if record.malicious}
        assert labelled == simulation.trace.malicious_event_ids

    def test_record_entities_match_event_endpoints(self, simulation):
        record = next(iter(ReplaySource(simulation.trace)))
        assert record.subject.entity_id == record.event.subject_id
        assert record.obj.entity_id == record.event.object_id

    def test_max_events_bounds_replay(self, simulation):
        records = list(ReplaySource(simulation, max_events=5).records())
        assert len(records) == 5

    def test_rejects_nonpositive_rate(self, simulation):
        with pytest.raises(ConfigurationError):
            ReplaySource(simulation, rate_events_per_second=0)


class TestLogTailSource:
    def test_parses_written_trace(self, simulation, tmp_path):
        path = tmp_path / "audit.log"
        with open(path, "w", encoding="utf-8") as handle:
            written = write_trace(simulation.trace, handle)
        records = list(LogTailSource(path=str(path)).records())
        assert len(records) == written
        assert {r.event.event_id for r in records} == {
            e.event_id for e in simulation.trace.events
        }

    def test_entities_deduplicated_across_lines(self, simulation, tmp_path):
        path = tmp_path / "audit.log"
        with open(path, "w", encoding="utf-8") as handle:
            write_trace(simulation.trace, handle)
        source = LogTailSource(path=str(path))
        seen: dict[int, object] = {}
        for record in source.records():
            for entity in record.entities():
                if entity.entity_id in seen:
                    assert seen[entity.entity_id] is entity
                seen[entity.entity_id] = entity

    def test_skips_corrupt_lines_leniently(self, simulation):
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        lines = buffer.getvalue().splitlines(keepends=True)
        lines.insert(1, "this is not an audit record\n")
        source = LogTailSource(stream=io.StringIO("".join(lines)))
        records = list(source.records())
        assert len(records) == len(simulation.trace.events)
        assert source.statistics.records_skipped == 1

    def test_max_events(self, simulation):
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        buffer.seek(0)
        records = list(LogTailSource(stream=buffer, max_events=3).records())
        assert len(records) == 3

    def test_requires_path_or_stream(self):
        with pytest.raises(ConfigurationError):
            LogTailSource()

    def test_final_line_without_newline_is_held_back_as_torn(self, simulation):
        """A newline-less final line is a collector caught mid-write: it must
        not be parsed as a complete record, and must be accounted for."""
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        text = buffer.getvalue().rstrip("\n")
        source = LogTailSource(stream=io.StringIO(text))
        records = list(source.records())
        assert len(records) == len(simulation.trace.events) - 1
        assert source.statistics.records_torn == 1
        assert source.statistics.records_skipped == 0

    def test_follow_mode_buffers_partial_lines(self, simulation):
        """A record caught mid-write must not be parsed until its newline."""
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        first_line = buffer.getvalue().splitlines()[0] + "\n"
        split_at = len(first_line) // 2

        class ChunkedHandle:
            """readline() returns a partial line, then the rest (tail -f EOF)."""

            def __init__(self, chunks):
                self._chunks = list(chunks)

            def readline(self):
                return self._chunks.pop(0) if self._chunks else ""

        handle = ChunkedHandle([first_line[:split_at], "", first_line[split_at:]])
        source = LogTailSource(
            stream=handle, follow=True, poll_interval=0.0, max_events=1  # type: ignore[arg-type]
        )
        records = list(source.records())
        assert len(records) == 1
        assert source.statistics.records_skipped == 0
        assert records[0].event.event_id == simulation.trace.events[0].event_id


class TestIterBatches:
    def test_groups_with_remainder(self):
        batches = list(iter_batches(iter(range(10)), 4))
        assert [len(batch) for batch in batches] == [4, 4, 2]

    def test_rejects_zero_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches(iter(range(3)), 0))


class TestLogTailResilience:
    """Rotation/truncation survival, resumable offsets, and retry-guarded reads."""

    @pytest.fixture()
    def log_lines(self, simulation):
        buffer = io.StringIO()
        write_trace(simulation.trace, buffer)
        return buffer.getvalue().splitlines(keepends=True)

    def _bounded_sleep(self, hooks):
        """A follow-mode sleep stub running one hook per call, failing loudly
        instead of spinning forever if the source never makes progress."""
        calls = {"n": 0}

        def sleep(_seconds):
            calls["n"] += 1
            if calls["n"] > 50:
                raise AssertionError("follow loop made no progress")
            if hooks:
                hooks.pop(0)()

        return sleep

    def test_follow_mode_survives_rotation(self, log_lines, tmp_path):
        import os

        path = tmp_path / "audit.log"
        path.write_text("".join(log_lines[:2]), encoding="utf-8")

        def rotate():
            os.rename(path, tmp_path / "audit.log.1")
            path.write_text("".join(log_lines[2:4]), encoding="utf-8")

        source = LogTailSource(
            path=str(path), follow=True, max_events=4,
            sleep=self._bounded_sleep([rotate]),
        )
        records = list(source.records())
        assert len(records) == 4
        assert source.rotations == 1
        assert [r.event.event_id for r in records] == [
            r.event.event_id
            for r in LogTailSource(stream=io.StringIO("".join(log_lines[:4]))).records()
        ]

    def test_follow_mode_survives_truncation(self, log_lines, tmp_path):
        path = tmp_path / "audit.log"
        path.write_text("".join(log_lines[:3]), encoding="utf-8")

        def truncate():
            # In-place truncation (same inode): the file shrinks below the
            # tail position and restarts with different content.
            path.write_text("".join(log_lines[3:5]), encoding="utf-8")

        source = LogTailSource(
            path=str(path), follow=True, max_events=5,
            sleep=self._bounded_sleep([truncate]),
        )
        records = list(source.records())
        assert len(records) == 5
        assert source.truncations == 1

    def test_start_offset_resumes_where_tail_stopped(self, log_lines, tmp_path):
        path = tmp_path / "audit.log"
        path.write_text("".join(log_lines[:3]), encoding="utf-8")
        first = LogTailSource(path=str(path))
        first_records = list(first.records())
        assert len(first_records) == 3
        state = first.checkpoint_state()
        assert state["kind"] == "log-tail"
        assert state["offset"] == path.stat().st_size
        assert state["inode"] == path.stat().st_ino

        with open(path, "a", encoding="utf-8") as handle:
            handle.write("".join(log_lines[3:5]))
        resumed = LogTailSource(
            path=str(path), start_offset=state["offset"], start_inode=state["inode"]
        )
        resumed_records = list(resumed.records())
        assert len(resumed_records) == 2
        assert {r.event.event_id for r in resumed_records}.isdisjoint(
            {r.event.event_id for r in first_records}
        )

    def test_stale_offset_after_rotation_restarts_from_zero(self, log_lines, tmp_path):
        path = tmp_path / "audit.log"
        path.write_text("".join(log_lines[:5]), encoding="utf-8")
        offset = path.stat().st_size
        stale_inode = path.stat().st_ino + 1  # the log rotated while down
        path.write_text("".join(log_lines[:2]), encoding="utf-8")
        source = LogTailSource(path=str(path), start_offset=offset, start_inode=stale_inode)
        assert len(list(source.records())) == 2

    def test_torn_final_line_is_not_committed(self, log_lines, tmp_path):
        path = tmp_path / "audit.log"
        torn_at = len(log_lines[0]) + len(log_lines[1]) // 2
        path.write_text("".join(log_lines[:2])[:torn_at], encoding="utf-8")
        source = LogTailSource(path=str(path))
        assert len(list(source.records())) == 1
        assert source.statistics.records_torn == 1
        assert source.offset == len(log_lines[0].encode("utf-8"))

        # Completing the line and resuming from the committed offset yields
        # exactly the record that was torn.
        path.write_text("".join(log_lines[:2]), encoding="utf-8")
        resumed = LogTailSource(
            path=str(path), start_offset=source.offset, start_inode=source.inode
        )
        records = list(resumed.records())
        assert len(records) == 1
        assert resumed.statistics.records_torn == 0

    def test_transient_read_errors_are_retried(self, log_lines):
        from repro.streaming.retry import RetryPolicy

        class FlakyHandle:
            """Every other readline raises a transient OSError."""

            def __init__(self, text):
                self._inner = io.StringIO(text)
                self.calls = 0

            def readline(self):
                self.calls += 1
                if self.calls % 2 == 1:
                    raise OSError("transient")
                return self._inner.readline()

        source = LogTailSource(
            stream=FlakyHandle("".join(log_lines[:4])),  # type: ignore[arg-type]
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=lambda _: None,
        )
        records = list(source.records())
        assert len(records) == 4
        assert source.retry_stats.retries >= 4
        assert source.retry_stats.giveups == 0

    def test_unguarded_read_error_propagates(self, log_lines):
        class BrokenHandle:
            def readline(self):
                raise OSError("disk gone")

        source = LogTailSource(stream=BrokenHandle())  # type: ignore[arg-type]
        with pytest.raises(OSError):
            list(source.records())

    def test_replay_source_checkpoint_and_resume(self, simulation):
        source = ReplaySource(simulation)
        records = list(source.records())
        assert source.checkpoint_state() == {"kind": "replay", "position": len(records)}
        resumed = ReplaySource(simulation, start_position=len(records) - 5)
        tail = list(resumed.records())
        assert [r.event.event_id for r in tail] == [
            r.event.event_id for r in records[-5:]
        ]
