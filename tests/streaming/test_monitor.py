"""Tests for standing-query monitoring: windowing, dedup, sink detection."""

from __future__ import annotations

import pytest

from repro.streaming.monitor import MAX_TIME_NS, QueryMonitor
from repro.tbql.ast import TimeWindow
from repro.tbql.parser import parse_query

_CHAIN_QUERY = """
proc p1["%tar%"] read file f1["%passwd%"] as evt1
proc p1 write file f2["%upload%"] as evt2
proc p2["%curl%"] read file f2 as evt3
with evt1 before evt2, evt2 before evt3
return p1, f1, f2, p2
"""

_UNORDERED_QUERY = """
proc p1["%tar%"] read file f1["%passwd%"] as evt1
proc p2["%curl%"] read file f2["%upload%"] as evt2
return p1, p2
"""


def _noop_execute(query):  # pragma: no cover - only used for registration tests
    raise AssertionError("not expected to execute")


class TestTemporalSink:
    def test_chain_query_has_final_sink(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("chain", _CHAIN_QUERY)
        assert standing.sink_event_id == "evt3"

    def test_single_pattern_is_its_own_sink(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("single", 'proc p read file f as e return p, f')
        assert standing.sink_event_id == "e"

    def test_unordered_query_has_no_sink(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("unordered", _UNORDERED_QUERY)
        assert standing.sink_event_id is None

    def test_partial_order_without_unique_sink(self):
        query = """
        proc p1["%a%"] read file f1["%x%"] as evt1
        proc p2["%b%"] read file f2["%y%"] as evt2
        proc p3["%c%"] read file f3["%z%"] as evt3
        with evt1 before evt2
        return p1, p2, p3
        """
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("partial", query)
        # evt2 and evt3 are both maximal: windowing would be unsound.
        assert standing.sink_event_id is None


class TestWindowing:
    def test_sink_pattern_gets_watermark_window(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("chain", _CHAIN_QUERY)
        standing._initialized = True
        windowed = monitor._windowed_query(standing, 12345)
        by_id = {pattern.event_id: pattern for pattern in windowed.patterns}
        assert by_id["evt3"].window == TimeWindow(start=12345, end=MAX_TIME_NS)
        assert by_id["evt1"].window is None
        assert by_id["evt2"].window is None

    def test_existing_window_is_intersected(self):
        query = parse_query(
            'proc p["%tar%"] read file f["%passwd%"] as e during (100, 500) return p, f'
        )
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("windowed", query)
        standing._initialized = True
        narrowed = monitor._windowed_query(standing, 250)
        assert narrowed.patterns[0].window == TimeWindow(start=250, end=500)

    def test_first_evaluation_is_unwindowed(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("chain", _CHAIN_QUERY)
        assert monitor._windowed_query(standing, 12345) is standing.query

    def test_no_watermark_means_full_query(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("chain", _CHAIN_QUERY)
        standing._initialized = True
        assert monitor._windowed_query(standing, None) is standing.query


class TestRegistration:
    def test_duplicate_name_rejected(self):
        monitor = QueryMonitor(_noop_execute)
        monitor.register("chain", _CHAIN_QUERY)
        with pytest.raises(ValueError):
            monitor.register("chain", _CHAIN_QUERY)

    def test_unregister(self):
        monitor = QueryMonitor(_noop_execute)
        monitor.register("chain", _CHAIN_QUERY)
        monitor.unregister("chain")
        assert monitor.queries == []

    def test_without_prepare_no_prepared_query(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("chain", _CHAIN_QUERY)
        assert standing.prepared is None


class TestPreparedStandingQueries:
    @staticmethod
    def _loaded_store():
        from repro.auditing.workload.attacks import Figure2DataLeakageChain
        from repro.auditing.workload.base import ScenarioBuilder
        from repro.auditing.workload.benign import SoftwareUpdateWorkload
        from repro.storage.loader import AuditStore

        builder = ScenarioBuilder(seed=31)
        SoftwareUpdateWorkload(packages=2).generate(builder)
        Figure2DataLeakageChain().generate(builder)
        store = AuditStore()
        store.load_trace(builder.build())
        return store

    def test_register_with_prepare_builds_prepared_query(self):
        from repro.tbql.executor import TBQLExecutionEngine

        engine = TBQLExecutionEngine(self._loaded_store())
        monitor = QueryMonitor(engine.execute, prepare=engine.prepare)
        standing = monitor.register("chain", _CHAIN_QUERY)
        assert standing.prepared is not None
        # The temporal sink is hinted as windowed at prepare time.
        assert standing.prepared.window_hints == ("evt3",)

    def test_prepared_and_unprepared_raise_identical_alerts(self):
        from repro.tbql.executor import TBQLExecutionEngine

        hunt = """
        proc p1["%tar%"] read file f1["%passwd%"] as evt1
        proc p1 write file f2["%upload%"] as evt2
        with evt1 before evt2
        return p1, f1, f2
        """

        def run(prepare: bool):
            engine = TBQLExecutionEngine(self._loaded_store())
            monitor = QueryMonitor(
                engine.execute, prepare=engine.prepare if prepare else None
            )
            monitor.register("chain", hunt)
            alerts = monitor.evaluate(0, None)  # initializing full pass
            alerts += monitor.evaluate(1, 0)  # windowed steady-state pass
            return sorted(alert.matched_event_ids for alert in alerts)

        prepared_alerts = run(prepare=True)
        assert prepared_alerts == run(prepare=False)
        assert len(prepared_alerts) >= 1

    def test_window_overrides_match_windowed_query_shape(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("chain", _CHAIN_QUERY)
        standing._initialized = True
        overrides = monitor._window_overrides(standing, 12345)
        assert overrides == {"evt3": TimeWindow(start=12345, end=MAX_TIME_NS)}
        windowed = monitor._windowed_query(standing, 12345)
        by_id = {pattern.event_id: pattern for pattern in windowed.patterns}
        assert by_id["evt3"].window == overrides["evt3"]

    def test_window_overrides_respect_existing_window(self):
        query = parse_query(
            'proc p["%tar%"] read file f["%passwd%"] as e during (100, 500) return p, f'
        )
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("windowed", query)
        standing._initialized = True
        overrides = monitor._window_overrides(standing, 250)
        assert overrides == {"e": TimeWindow(start=250, end=500)}

    def test_no_overrides_before_initialization(self):
        monitor = QueryMonitor(_noop_execute)
        standing = monitor.register("chain", _CHAIN_QUERY)
        assert monitor._window_overrides(standing, 12345) is None
