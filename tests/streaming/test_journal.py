"""Tests for the durable append-only alert journal."""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError, RetryExhaustedError
from repro.streaming.alerts import Alert
from repro.streaming.journal import JournalSink
from repro.streaming.retry import RetryPolicy


def make_alert(hunt: str = "h", batch: int = 0, ids: tuple[int, ...] = (1, 2)) -> Alert:
    return Alert(
        hunt=hunt,
        batch_index=batch,
        matched_event_ids=ids,
        start_time_ns=100,
        end_time_ns=200,
        entities={"p1": "/usr/bin/scp"},
        reports=("r1",),
    )


class TestJournalSink:
    def test_appends_sequence_numbered_jsonl(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        with JournalSink(path) as journal:
            journal.emit(make_alert(ids=(1, 2)))
            journal.emit(make_alert(ids=(3, 4)))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        entries = [json.loads(line) for line in lines]
        assert [entry["seq"] for entry in entries] == [0, 1]
        assert entries[0]["alert"]["matched_event_ids"] == [1, 2]

    def test_duplicate_signature_is_suppressed(self, tmp_path):
        with JournalSink(tmp_path / "j.jsonl") as journal:
            journal.emit(make_alert(ids=(1, 2)))
            journal.emit(make_alert(batch=5, ids=(1, 2)))  # same signature, later batch
            assert len(journal) == 1
            assert journal.suppressed == 1

    def test_same_signature_different_hunts_both_journaled(self, tmp_path):
        with JournalSink(tmp_path / "j.jsonl") as journal:
            journal.emit(make_alert(hunt="a", ids=(1, 2)))
            journal.emit(make_alert(hunt="b", ids=(1, 2)))
            assert len(journal) == 2

    def test_recovery_restores_signatures_and_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalSink(path) as journal:
            journal.emit(make_alert(ids=(1, 2)))
            journal.emit(make_alert(ids=(3, 4)))
        reopened = JournalSink(path)
        assert reopened.recovered_entries == 2
        assert reopened.next_seq == 2
        reopened.emit(make_alert(ids=(1, 2)))  # replay duplicate
        assert reopened.suppressed == 1
        reopened.emit(make_alert(ids=(5, 6)))  # genuinely new
        reopened.close()
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["seq"] for entry in entries] == [0, 1, 2]
        assert reopened.signatures()["h"] == {(1, 2), (3, 4), (5, 6)}

    def test_torn_final_line_is_truncated_on_recovery(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalSink(path) as journal:
            journal.emit(make_alert(ids=(1, 2)))
        good = path.read_bytes()
        path.write_bytes(good + b'{"seq": 1, "alert": {"hunt": "h"')  # mid-append crash
        recovered = JournalSink(path)
        assert recovered.truncated_tail == 1
        assert recovered.recovered_entries == 1
        recovered.close()
        assert path.read_bytes() == good

    def test_corruption_before_final_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalSink(path) as journal:
            journal.emit(make_alert(ids=(1, 2)))
        lines = path.read_bytes()
        path.write_bytes(b"not json at all\n" + lines)
        with pytest.raises(JournalError):
            JournalSink(path)

    def test_alerts_round_trip(self, tmp_path):
        alert = make_alert(ids=(7, 8, 9))
        with JournalSink(tmp_path / "j.jsonl") as journal:
            journal.emit(alert)
            assert journal.alerts() == [alert]

    def test_retry_policy_guards_appends(self, tmp_path):
        journal = JournalSink(
            tmp_path / "j.jsonl",
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            sleep=lambda _: None,
        )
        journal.close()  # closed handle: every append now raises ValueError...
        # ...which is not retryable; use a fresh journal with a failing handle
        failing = JournalSink(
            tmp_path / "k.jsonl",
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            sleep=lambda _: None,
        )

        class Boom:
            def write(self, _data):
                raise OSError("disk hiccup")

            def flush(self):
                pass

            @property
            def closed(self):
                return True

        failing._handle = Boom()
        with pytest.raises(RetryExhaustedError):
            failing.emit(make_alert())
        assert failing.retry_stats.giveups == 1
