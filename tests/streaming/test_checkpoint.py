"""Tests for the atomic checkpoint store."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.streaming.checkpoint import CHECKPOINT_VERSION, CheckpointStore


class TestCheckpointStore:
    def test_save_and_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"hunts": [{"name": "h"}], "batch_size": 96})
        state = store.load()
        assert state is not None
        assert state["hunts"] == [{"name": "h"}]
        assert state["version"] == CHECKPOINT_VERSION
        assert "written_at" in state

    def test_load_returns_none_when_nothing_saved(self, tmp_path):
        assert CheckpointStore(tmp_path).load() is None
        assert not CheckpointStore(tmp_path / "sub").exists()

    def test_latest_write_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        store.save({"n": 2})
        store.save({"n": 3})
        assert store.load()["n"] == 3

    def test_corrupt_live_file_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        store.save({"n": 2})
        store.path.write_text("{ torn mid-write", encoding="utf-8")
        assert CheckpointStore(tmp_path).load()["n"] == 1

    def test_all_snapshots_corrupt_raises_instead_of_fresh_start(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        store.save({"n": 2})
        store.path.write_text("garbage", encoding="utf-8")
        (tmp_path / "checkpoint.json.prev").write_text("also garbage", encoding="utf-8")
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path).load()

    def test_version_mismatch_is_not_restorable(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        state = json.loads(store.path.read_text(encoding="utf-8"))
        state["version"] = CHECKPOINT_VERSION + 1
        store.path.write_text(json.dumps(state), encoding="utf-8")
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path).load()

    def test_no_temp_file_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        assert not (tmp_path / "checkpoint.json.tmp").exists()

    def test_statistics_track_write_cost(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1})
        store.save({"n": 2})
        stats = store.statistics()
        assert stats["writes"] == 2
        assert stats["write_seconds"] > 0
        assert stats["seconds_per_write"] > 0
