"""Tests for the ``threatraptor watch`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data import FIGURE2_REPORT


@pytest.fixture()
def audit_log(tmp_path):
    path = tmp_path / "audit.log"
    exit_code = main(
        ["simulate", str(path), "--seed", "3", "--scale", "0.3", "--attack", "figure2-data-leakage"]
    )
    assert exit_code == 0
    return path


@pytest.fixture()
def report_file(tmp_path):
    path = tmp_path / "report.txt"
    path.write_text(FIGURE2_REPORT.text, encoding="utf-8")
    return path


class TestWatch:
    def test_watch_raises_alert_and_matches_hunt(self, report_file, audit_log, capsys):
        assert main(["watch", str(report_file), str(audit_log), "--batch-size", "40"]) == 0
        output = capsys.readouterr().out
        assert "Standing TBQL query" in output
        assert "ALERT [watch]" in output
        assert "192.168.29.128" in output
        # Same matched set as the one-shot `hunt` subcommand on this log.
        assert "matched events=8" in output

    def test_watch_writes_jsonl_alerts(self, report_file, audit_log, tmp_path, capsys):
        alerts_path = tmp_path / "alerts.jsonl"
        assert (
            main(
                [
                    "watch",
                    str(report_file),
                    str(audit_log),
                    "--batch-size",
                    "64",
                    "--alerts",
                    str(alerts_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        lines = alerts_path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        alert = json.loads(lines[0])
        assert alert["hunt"] == "watch"
        assert len(alert["matched_event_ids"]) == 8
        assert alert["entities"]["i1"] == "192.168.29.128"

    def test_watch_max_events_bounds_the_stream(self, report_file, audit_log, capsys):
        assert (
            main(
                ["watch", str(report_file), str(audit_log), "--batch-size", "10", "--max-events", "30"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "events=30" in output

    def test_watch_missing_log_is_error(self, report_file, capsys):
        assert main(["watch", str(report_file), "/nonexistent/audit.log"]) == 1
        assert "error:" in capsys.readouterr().err


class TestWatchCheckpoint:
    def test_first_run_creates_checkpoint_and_journal(
        self, report_file, audit_log, tmp_path, capsys
    ):
        ckpt = tmp_path / "state"
        assert (
            main(
                [
                    "watch",
                    str(report_file),
                    str(audit_log),
                    "--batch-size",
                    "40",
                    "--checkpoint-dir",
                    str(ckpt),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Resumed" not in output
        assert "ALERT [watch]" in output
        assert (ckpt / "checkpoint.json").exists()
        assert (ckpt / "alerts.jsonl").read_text(encoding="utf-8").count("\n") == 1

    def test_second_run_resumes_and_never_reemits(
        self, report_file, audit_log, tmp_path, capsys
    ):
        ckpt = tmp_path / "state"
        args = [
            "watch",
            str(report_file),
            str(audit_log),
            "--batch-size",
            "40",
            "--checkpoint-dir",
            str(ckpt),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "Resumed from checkpoint" in output
        assert "ALERT" not in output  # already journaled: suppressed on replay
        # The journal still holds exactly the one original alert.
        assert (ckpt / "alerts.jsonl").read_text(encoding="utf-8").count("\n") == 1
