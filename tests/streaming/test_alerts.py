"""Unit tests for streaming alerts, including the frozen-dataclass hash fix."""

from __future__ import annotations

import io
import json

from repro.streaming.alerts import Alert, JSONLSink, ListSink


def _alert(batch: int = 0, entities: dict | None = None) -> Alert:
    return Alert(
        hunt="figure2",
        batch_index=batch,
        matched_event_ids=(3, 7),
        start_time_ns=100,
        end_time_ns=900,
        entities={"p": "/bin/bash"} if entities is None else entities,
    )


class TestAlertHashing:
    def test_alert_is_hashable_despite_mutable_entities(self):
        """Regression: the generated ``__hash__`` of the frozen dataclass
        hashed the ``entities`` dict and raised ``TypeError`` the moment an
        alert was put in a set or used as a dict key."""
        alert = _alert()
        assert isinstance(hash(alert), int)
        assert {alert: "value"}[alert] == "value"

    def test_equal_alerts_collapse_in_sets(self):
        first = _alert()
        second = _alert()
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_alerts_differing_only_in_entities_still_compare_unequal(self):
        # Excluded from hashing, but still part of equality.
        first = _alert(entities={"p": "/bin/bash"})
        second = _alert(entities={"p": "/bin/tar"})
        assert first != second
        assert len({first, second}) == 2


class TestSinks:
    def test_list_sink_collects(self):
        sink = ListSink()
        sink.emit(_alert())
        assert len(sink) == 1

    def test_jsonl_sink_serialises_one_object_per_line(self):
        stream = io.StringIO()
        sink = JSONLSink(stream)
        sink.emit(_alert(batch=4))
        payload = json.loads(stream.getvalue())
        assert payload["batch"] == 4
        assert payload["matched_event_ids"] == [3, 7]
