"""Crash/resume tests for the hunting service: checkpoint, journal, quarantine."""

from __future__ import annotations

import json

import pytest

from repro.auditing.workload.attacks import Figure2DataLeakageChain
from repro.auditing.workload.generator import HostSimulator
from repro.core.pipeline import ThreatRaptor
from repro.data import FIGURE2_REPORT
from repro.streaming import (
    CheckpointStore,
    HuntingService,
    JournalSink,
    ListSink,
    ReplaySource,
)


@pytest.fixture(scope="module")
def simulation():
    return (
        HostSimulator(seed=41, benign_scale=0.4)
        .add_default_benign()
        .add_attack(Figure2DataLeakageChain())
        .run()
    )


@pytest.fixture(scope="module")
def batch_matched(simulation):
    raptor = ThreatRaptor()
    raptor.load_trace(simulation.trace)
    return raptor.hunt(FIGURE2_REPORT.text).result.all_matched_event_ids()


def _crash_safe_service(tmp_path, resume=False, batch_size=64):
    store = CheckpointStore(tmp_path)
    journal = JournalSink(tmp_path / "alerts.jsonl")
    if resume:
        service = HuntingService.resume(
            store, raptor=ThreatRaptor(), batch_size=batch_size, journal=journal
        )
    else:
        service = HuntingService(
            raptor=ThreatRaptor(),
            batch_size=batch_size,
            checkpoint_store=store,
            journal=journal,
        )
    return service, journal


class TestCheckpointedService:
    def test_checkpoint_written_after_every_batch(self, simulation, tmp_path):
        service, journal = _crash_safe_service(tmp_path)
        service.register_hunt("figure2", report=FIGURE2_REPORT.text)
        service.run(ReplaySource(simulation))
        journal.close()
        stats = service.statistics()
        # One write per hunt registration plus one per evaluated batch.
        assert stats["resilience"]["checkpoint"]["writes"] >= stats["ingest"]["batches"]
        state = CheckpointStore(tmp_path).load()
        assert state is not None
        assert [hunt["name"] for hunt in state["hunts"]] == ["figure2"]
        assert state["source"]["kind"] == "replay"

    def test_crash_and_resume_equals_uninterrupted(
        self, simulation, batch_matched, tmp_path
    ):
        # Uninterrupted reference run.
        ref_dir = tmp_path / "ref"
        reference, ref_journal = _crash_safe_service(ref_dir)
        reference.register_hunt("figure2", report=FIGURE2_REPORT.text)
        reference.run(ReplaySource(simulation))
        ref_journal.close()
        reference_bytes = ref_journal.path.read_bytes()

        # Crashed run: stop mid-stream without flushing, discard memory.
        crash_dir = tmp_path / "crash"
        before, journal_before = _crash_safe_service(crash_dir)
        before.register_hunt("figure2", report=FIGURE2_REPORT.text)
        before.run(ReplaySource(simulation), max_batches=2, flush=False)
        journal_before.close()
        del before

        # Resume from disk only and re-run the stream.
        after, journal_after = _crash_safe_service(crash_dir, resume=True)
        assert after.resumed
        assert after.hunt("figure2") is not None  # restored, not re-registered
        after.run(ReplaySource(simulation))
        journal_after.close()

        assert journal_after.path.read_bytes() == reference_bytes
        assert after.matched_event_ids("figure2") == batch_matched

    def test_resume_without_checkpoint_is_fresh_start(self, tmp_path):
        service, journal = _crash_safe_service(tmp_path, resume=True)
        journal.close()
        assert not service.resumed
        assert service.hunts == []

    def test_restored_hunt_keeps_provenance_and_counters(self, simulation, tmp_path):
        service, journal = _crash_safe_service(tmp_path)
        service.register_hunt(
            "figure2",
            report=FIGURE2_REPORT.text,
            provenance=("report-1", "report-2"),
            canonical_key="ck-figure2",
        )
        service.run(ReplaySource(simulation))
        journal.close()
        original = service.hunt("figure2")

        resumed, journal2 = _crash_safe_service(tmp_path, resume=True)
        journal2.close()
        restored = resumed.hunt("figure2")
        assert restored is not None
        assert restored.provenance == ("report-1", "report-2")
        assert restored.canonical_key == "ck-figure2"
        assert restored.alerts_raised == original.alerts_raised
        assert restored.matched_event_ids() == original.matched_event_ids()
        assert resumed.hunt_by_canonical_key("ck-figure2") is restored

    def test_journal_alone_recovers_delivery_state(self, simulation, tmp_path):
        """Even if only the journal survives (checkpoint lost), resumed runs
        must not re-deliver journaled alerts."""
        first_dir = tmp_path / "first"
        service, journal = _crash_safe_service(first_dir)
        service.register_hunt("figure2", report=FIGURE2_REPORT.text)
        service.run(ReplaySource(simulation))
        journal.close()
        journaled = len(journal)
        assert journaled > 0

        # New service, fresh checkpoint dir, same journal file.
        store = CheckpointStore(tmp_path / "second")
        journal2 = JournalSink(journal.path)
        resumed = HuntingService.resume(
            store, raptor=ThreatRaptor(), batch_size=64, journal=journal2
        )
        resumed.register_hunt("figure2", report=FIGURE2_REPORT.text)
        # Merge journal state into the freshly-registered hunt (resume() only
        # merges into restored hunts).
        resumed.hunt("figure2").absorb_signatures(journal2.signatures()["figure2"])
        resumed.run(ReplaySource(simulation))
        journal2.close()
        assert len(journal2) == journaled  # nothing re-journaled


class TestSignatureStability:
    def test_signatures_survive_json_round_trip(self, simulation, tmp_path):
        """Dedup signatures must be restart-stable: serialising the snapshot
        to JSON and restoring it must reproduce the exact signature set (no
        ``id()``/hash-seed dependence)."""
        service, journal = _crash_safe_service(tmp_path)
        service.register_hunt("figure2", report=FIGURE2_REPORT.text)
        service.run(ReplaySource(simulation))
        journal.close()
        standing = service.hunt("figure2")
        snapshot = json.loads(json.dumps(standing.snapshot(), sort_keys=True))

        resumed, journal2 = _crash_safe_service(tmp_path, resume=True)
        journal2.close()
        restored = resumed.hunt("figure2")
        assert restored.snapshot() == snapshot
        assert restored._seen_signatures == standing._seen_signatures
        assert all(
            isinstance(sig, tuple) and all(isinstance(i, int) for i in sig)
            for sig in restored._seen_signatures
        )

    def test_signature_is_sorted_event_id_tuple(self, simulation):
        sink = ListSink()
        raptor = ThreatRaptor()
        service = raptor.watch(
            FIGURE2_REPORT.text, name="figure2", batch_size=64, sinks=(sink,)
        )
        service.run(ReplaySource(simulation))
        for alert in sink.alerts:
            assert list(alert.matched_event_ids) == sorted(alert.matched_event_ids)


class TestQuarantine:
    def test_failing_hunt_is_quarantined_not_fatal(self, simulation, batch_matched):
        raptor = ThreatRaptor()
        service = HuntingService(raptor=raptor, batch_size=64, quarantine_after=2)
        service.register_hunt("figure2", report=FIGURE2_REPORT.text)
        service.register_hunt("bad", query="proc p read file f as e return p")
        bad = service.hunt("bad")

        class ExplodingPlan:
            def execute(self, **_kwargs):
                raise RuntimeError("synthetic evaluation failure")

        bad.prepared = ExplodingPlan()

        service.run(ReplaySource(simulation))
        stats = service.statistics()
        assert stats["hunts"]["bad"]["status"] == "quarantined"
        assert stats["hunts"]["bad"]["errors"] >= 2
        assert "synthetic evaluation failure" in stats["hunts"]["bad"]["last_error"]
        # The healthy hunt was unaffected.
        assert stats["hunts"]["figure2"]["status"] == "ok"
        assert service.matched_event_ids("figure2") == batch_matched
        # Quarantined hunts stop being evaluated.
        evaluations_when_quarantined = bad.evaluations
        service.process_batch([])
        assert bad.evaluations == evaluations_when_quarantined

    def test_reinstate_clears_quarantine(self, simulation):
        raptor = ThreatRaptor()
        service = HuntingService(raptor=raptor, batch_size=64, quarantine_after=1)
        service.register_hunt("bad", query="proc p read file f as e return p")
        bad = service.hunt("bad")

        class ExplodingPlan:
            def __init__(self):
                self.calls = 0

            def execute(self, **_kwargs):
                self.calls += 1
                raise RuntimeError("boom")

        plan = ExplodingPlan()
        bad.prepared = plan
        records = list(ReplaySource(simulation, max_events=128).records())
        service.process_batch(records[:64])
        assert bad.quarantined
        calls_before = plan.calls

        service.reinstate_hunt("bad")
        assert not bad.quarantined
        assert bad.status == "degraded"  # errors stay on the record
        service.process_batch(records[64:])
        assert plan.calls > calls_before  # evaluated again after reinstatement

    def test_single_error_marks_degraded_but_keeps_running(self, simulation):
        raptor = ThreatRaptor()
        service = HuntingService(raptor=raptor, batch_size=64, quarantine_after=100)
        service.register_hunt("flaky", query="proc p read file f as e return p")
        flaky = service.hunt("flaky")
        real_plan = flaky.prepared

        class FailOncePlan:
            def __init__(self):
                self.failed = False

            def execute(self, **kwargs):
                if not self.failed:
                    self.failed = True
                    raise RuntimeError("one-off")
                return real_plan.execute(**kwargs)

        flaky.prepared = FailOncePlan()
        service.run(ReplaySource(simulation))
        assert flaky.errors == 1
        assert flaky.consecutive_errors == 0
        assert flaky.status == "degraded"
        assert not flaky.quarantined
