"""Tests for the deterministic retry policy."""

from __future__ import annotations

import pytest

from repro.errors import RetryExhaustedError
from repro.streaming.retry import RetryPolicy, RetryStats


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, exc: type[Exception] = OSError) -> None:
        self.remaining = failures
        self.calls = 0
        self._exc = exc

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self._exc("transient")
        return "ok"


class TestRetryPolicy:
    def test_succeeds_first_try_without_sleeping(self):
        slept: list[float] = []
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(Flaky(0), sleep=slept.append) == "ok"
        assert slept == []

    def test_retries_transient_oserror_until_success(self):
        slept: list[float] = []
        flaky = Flaky(2)
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=5, base_delay=0.01)
        assert policy.call(flaky, sleep=slept.append, stats=stats) == "ok"
        assert flaky.calls == 3
        assert len(slept) == 2
        assert stats.retries == 2
        assert stats.giveups == 0

    def test_exhaustion_raises_retry_exhausted(self):
        flaky = Flaky(10)
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        with pytest.raises(RetryExhaustedError):
            policy.call(flaky, sleep=lambda _: None, stats=stats)
        assert flaky.calls == 3
        assert stats.giveups == 1

    def test_non_retryable_exception_propagates_immediately(self):
        flaky = Flaky(5, exc=ValueError)
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(ValueError):
            policy.call(flaky, sleep=lambda _: None)
        assert flaky.calls == 1

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        delays = [policy.delay_for(attempt) for attempt in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic_per_seed_and_attempt(self):
        first = RetryPolicy(seed=7, jitter=0.5)
        second = RetryPolicy(seed=7, jitter=0.5)
        assert [first.delay_for(a) for a in range(1, 5)] == [
            second.delay_for(a) for a in range(1, 5)
        ]
        different = RetryPolicy(seed=8, jitter=0.5)
        assert [first.delay_for(a) for a in range(1, 5)] != [
            different.delay_for(a) for a in range(1, 5)
        ]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.25, seed=3)
        for attempt in range(1, 8):
            nominal = min(10.0, 0.1 * (2 ** (attempt - 1)))
            delay = policy.delay_for(attempt)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_per_attempt_timeout_retries_hung_call(self):
        import time as _time

        calls = {"n": 0}

        def hangs_once():
            calls["n"] += 1
            if calls["n"] == 1:
                _time.sleep(0.5)
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.001, per_attempt_timeout=0.05)
        assert policy.call(hangs_once, sleep=lambda _: None) == "ok"
        assert calls["n"] == 2

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
