"""Tests for micro-batched incremental ingestion, incl. CPR equivalence."""

from __future__ import annotations

import pytest

from repro.auditing.workload.attacks import DataLeakageAttack, PasswordCrackingAttack
from repro.auditing.workload.benign import NoisyFileServerWorkload
from repro.auditing.workload.generator import HostSimulator
from repro.storage.loader import AuditStore
from repro.streaming.ingest import StreamIngestor
from repro.streaming.source import ReplaySource, iter_batches


@pytest.fixture(scope="module")
def simulation():
    """A workload with heavy same-edge repetition so CPR actually merges."""
    simulator = (
        HostSimulator(seed=19, benign_scale=0.4)
        .add_default_benign()
        .add_attack(PasswordCrackingAttack())
        .add_attack(DataLeakageAttack())
    )
    simulator.add_benign(NoisyFileServerWorkload(sessions=3, operations_per_session=50))
    return simulator.run()


def _stream_into(store: AuditStore, simulation, batch_size: int) -> StreamIngestor:
    ingestor = StreamIngestor(store, batch_size=batch_size)
    for batch in iter_batches(ReplaySource(simulation).records(), batch_size):
        ingestor.ingest(batch)
    ingestor.flush()
    return ingestor


class TestIncrementalCPREquivalence:
    """Streamed batches must reduce to the same event set as one batch load."""

    @pytest.mark.parametrize("batch_size", [7, 64, 100_000])
    def test_same_events_as_whole_trace_reduction(self, simulation, batch_size):
        streamed = AuditStore()
        _stream_into(streamed, simulation, batch_size)
        batch = AuditStore()
        batch.load_trace(simulation.trace)

        streamed_events = {
            (e.event_id, e.start_time, e.end_time, e.amount)
            for e in streamed.loaded_trace.events
        }
        batch_events = {
            (e.event_id, e.start_time, e.end_time, e.amount)
            for e in batch.loaded_trace.events
        }
        assert streamed_events == batch_events
        assert (
            streamed.loaded_trace.malicious_event_ids
            == batch.loaded_trace.malicious_event_ids
        )

    def test_reduction_actually_merged_events(self, simulation):
        streamed = AuditStore()
        ingestor = _stream_into(streamed, simulation, batch_size=50)
        assert ingestor.statistics.events_stored < ingestor.statistics.events_ingested

    def test_backends_consistent_after_streaming(self, simulation):
        store = AuditStore()
        _stream_into(store, simulation, batch_size=64)
        assert len(store.relational.table("events")) == store.graph.edge_count()
        assert len(store.relational.table("entities")) == store.graph.node_count()

    def test_no_reduction_mode_stores_everything(self, simulation):
        store = AuditStore(apply_reduction=False)
        ingestor = _stream_into(store, simulation, batch_size=64)
        assert ingestor.statistics.events_stored == len(simulation.trace.events)
        assert store.pending_events == 0


class TestStreamIngestor:
    def test_statistics_accumulate(self, simulation):
        store = AuditStore()
        ingestor = StreamIngestor(store, batch_size=32)
        batches = list(ingestor.ingest_stream(ReplaySource(simulation).records()))
        assert ingestor.statistics.batches == len(batches)
        assert ingestor.statistics.events_ingested == len(simulation.trace.events)
        assert ingestor.statistics.seconds > 0.0
        assert ingestor.statistics.events_per_second > 0.0

    def test_batches_expose_watermark(self, simulation):
        store = AuditStore()
        ingestor = StreamIngestor(store, batch_size=32)
        watermarks = [
            batch.watermark_start_ns
            for batch in ingestor.ingest_stream(ReplaySource(simulation).records())
            if batch.watermark_start_ns is not None
        ]
        assert watermarks == sorted(watermarks)

    def test_entities_not_duplicated_across_batches(self, simulation):
        store = AuditStore()
        _stream_into(store, simulation, batch_size=16)
        entity_ids = [row["id"] for row in store.relational.table("entities").scan()]
        assert len(entity_ids) == len(set(entity_ids))

    def test_rejects_bad_batch_size(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            StreamIngestor(AuditStore(), batch_size=0)

    def test_malicious_labels_survive_merging(self, simulation):
        store = AuditStore()
        _stream_into(store, simulation, batch_size=64)
        # Every ground-truth malicious event is either stored as-is or was
        # merged into a representative that carries the malicious label.
        stored_malicious = store.loaded_trace.malicious_event_ids
        assert stored_malicious
        stored_ids = {e.event_id for e in store.loaded_trace.events}
        assert stored_malicious <= stored_ids
