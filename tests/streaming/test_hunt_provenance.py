"""Unit tests for standing-hunt provenance plumbing."""

from __future__ import annotations

import pytest

from repro.streaming.alerts import Alert
from repro.streaming.monitor import QueryMonitor
from repro.tbql.parser import parse_query

_QUERY = 'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e return p, f'


def _monitor() -> QueryMonitor:
    return QueryMonitor(execute=lambda query: pytest.fail("should not execute"))


class TestMonitorProvenance:
    def test_register_records_provenance_and_key(self):
        monitor = _monitor()
        standing = monitor.register(
            "hunt", _QUERY, provenance=("r1", "r2"), canonical_key="KEY"
        )
        assert standing.provenance == ("r1", "r2")
        assert standing.canonical_key == "KEY"
        assert monitor.by_canonical_key("KEY") is standing
        assert monitor.by_canonical_key("OTHER") is None

    def test_extend_provenance_skips_duplicates(self):
        monitor = _monitor()
        monitor.register("hunt", _QUERY, provenance=("r1",))
        standing = monitor.extend_provenance("hunt", ["r1", "r2", "r2", "r3"])
        assert standing.provenance == ("r1", "r2", "r3")

    def test_default_registration_has_no_provenance(self):
        monitor = _monitor()
        standing = monitor.register("hunt", parse_query(_QUERY))
        assert standing.provenance == ()
        assert standing.canonical_key is None


class TestAlertProvenance:
    def test_reports_default_empty_and_serialized(self):
        alert = Alert(
            hunt="h",
            batch_index=0,
            matched_event_ids=(1, 2),
            start_time_ns=0,
            end_time_ns=1,
        )
        assert alert.reports == ()
        assert alert.to_dict()["reports"] == []
        assert "reports=" not in alert.describe()

    def test_reports_rendered_when_present(self):
        alert = Alert(
            hunt="h",
            batch_index=0,
            matched_event_ids=(1,),
            start_time_ns=0,
            end_time_ns=1,
            reports=("r1", "r2"),
        )
        assert alert.to_dict()["reports"] == ["r1", "r2"]
        assert "reports=r1,r2" in alert.describe()
        # Alerts stay hashable with provenance attached.
        assert alert in {alert}


class TestCanonicalKeyIndex:
    def test_unregister_clears_canonical_routing(self):
        monitor = _monitor()
        monitor.register("hunt", _QUERY, canonical_key="KEY")
        monitor.unregister("hunt")
        assert monitor.by_canonical_key("KEY") is None

    def test_first_registration_wins_for_duplicate_keys(self):
        monitor = _monitor()
        first = monitor.register("first", _QUERY, canonical_key="KEY")
        monitor.register("second", _QUERY, canonical_key="KEY")
        assert monitor.by_canonical_key("KEY") is first
        monitor.unregister("second")
        assert monitor.by_canonical_key("KEY") is first

    def test_unregister_repoints_to_surviving_duplicate_key(self):
        monitor = _monitor()
        monitor.register("first", _QUERY, canonical_key="KEY")
        second = monitor.register("second", _QUERY, canonical_key="KEY")
        monitor.unregister("first")
        assert monitor.by_canonical_key("KEY") is second
